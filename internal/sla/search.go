package sla

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/frontier"
	"repro/internal/market"
	"repro/internal/ndwf"
	"repro/internal/obs"
	"repro/internal/sched"
)

// SearchConfig parameterizes a deadline-constrained portfolio search.
type SearchConfig struct {
	// Deadline is the SLA's makespan bound in seconds; Target the
	// required meet probability ("finish by Deadline with probability at
	// least Target").
	Deadline float64
	Target   float64
	// Config embeds the per-candidate sampling parameters (Samples, Seed,
	// Workers, Level, Faults, Paranoid).
	Config
	// Candidates restricts the portfolio. Nil enumerates
	// frontier.Portfolio(nil, Markets): the full strategy registry
	// crossed with the given market presets.
	Candidates []frontier.Candidate
	// Markets selects the market presets swept when Candidates is nil;
	// nil means the paper's economics only ("none").
	Markets []string
	// Opts carries platform and region; each candidate's market preset
	// overrides Opts.Market.
	Opts sched.Options
	// NoBound disables the analytic prune, forcing every candidate
	// through sampling. The fuzz harness uses it to prove pruning never
	// changes the answer; it is also the escape hatch if a bound bug ever
	// ships.
	NoBound bool
	// Trace, when non-nil, receives one span per portfolio candidate
	// (named "candidate <strategy>@<market>", annotated with its fate),
	// parented on TraceParent — how a service request's trace extends into
	// the search. Nil (the default) costs one branch per candidate.
	Trace       *obs.Trace
	TraceParent obs.SpanID
}

// Pruned records a candidate rejected by the analytic pre-pass: its
// certain lower bound already exceeds the deadline, so P(meet) = 0 and no
// samples were spent on it.
type Pruned struct {
	Strategy string
	Market   string
	Bound    Bound
}

// SearchResult is the outcome of a portfolio search.
type SearchResult struct {
	Deadline float64
	Target   float64
	// Best is the cheapest sampled candidate with MeetProbability >=
	// Target, or — when none qualifies (the search returns
	// ErrNoStrategyMeets) — the highest-probability candidate as a
	// best-effort answer. Nil only when everything was pruned.
	Best *Result
	// Results holds every sampled candidate sorted by (mean cost,
	// strategy, market); Pruned the candidates the analytic bound
	// rejected, in portfolio order.
	Results []Result
	Pruned  []Pruned
	// Considered counts portfolio candidates, Sampled the template
	// instances actually scheduled (Considered−len(Pruned) candidates ×
	// Samples each).
	Considered int
	Sampled    int
	// Audit records every candidate's verdict in visit order plus the
	// winner rationale; its pruned and sampled counts always sum to
	// Considered.
	Audit Audit
}

// pruneMargin keeps the analytic prune strictly conservative against
// float rounding: a candidate is dropped only when its certain lower
// bound exceeds the deadline by more than a relative hair, so a bound
// that lands exactly on the deadline still gets sampled.
const pruneMargin = 1e-9

// Search finds the cheapest strategy × market candidate meeting
// P(makespan <= Deadline) >= Target over the template's instance
// distribution. Each candidate first passes through the analytic bound
// (AnalyticBound at BoundType(strategy)): candidates whose certain
// minimal makespan already exceeds the deadline are pruned without
// sampling — by construction this never drops a candidate the Monte-Carlo
// pass could have accepted, since no realization can beat the bound. The
// survivors are measured with Measure under identical hash-derived seeds,
// so the result is bit-identical across runs, worker counts, and prune
// on/off.
//
// If no candidate reaches the target, Search returns the best-effort
// SearchResult along with ErrNoStrategyMeets.
func Search(t ndwf.Template, cfg SearchConfig) (SearchResult, error) {
	if cfg.Deadline <= 0 {
		return SearchResult{}, fmt.Errorf("sla: non-positive deadline %v", cfg.Deadline)
	}
	if cfg.Target <= 0 || cfg.Target > 1 {
		return SearchResult{}, fmt.Errorf("sla: target probability %v outside (0, 1]", cfg.Target)
	}
	if err := t.Validate(); err != nil {
		return SearchResult{}, err
	}
	cands := cfg.Candidates
	if cands == nil {
		cands = frontier.Portfolio(nil, cfg.Markets)
	}
	if len(cands) == 0 {
		return SearchResult{}, fmt.Errorf("sla: empty candidate portfolio")
	}

	out := SearchResult{Deadline: cfg.Deadline, Target: cfg.Target, Considered: len(cands)}
	out.Audit = Audit{PortfolioSize: len(cands)}
	for _, c := range cands {
		sp := cfg.Trace.StartSpan("candidate "+c.Strategy+"@"+c.Market, cfg.TraceParent)
		alg, err := sched.ByName(c.Strategy)
		if err != nil {
			sp.End()
			return SearchResult{}, fmt.Errorf("sla: %w", err)
		}
		model, err := market.Preset(c.Market)
		if err != nil {
			sp.End()
			return SearchResult{}, fmt.Errorf("sla: %w", err)
		}
		bound, err := AnalyticBound(t, BoundType(c.Strategy))
		if err != nil {
			sp.End()
			return SearchResult{}, err
		}
		v := Verdict{
			Strategy:      c.Strategy,
			Market:        c.Market,
			BoundMinS:     bound.MinMakespan,
			BoundEstimate: bound.MeetEstimate(cfg.Deadline),
		}
		if !cfg.NoBound && bound.MinMakespan > cfg.Deadline*(1+pruneMargin) {
			out.Pruned = append(out.Pruned, Pruned{Strategy: c.Strategy, Market: c.Market, Bound: bound})
			v.Fate = "pruned"
			v.Reason = fmt.Sprintf("certain minimum %.1f s exceeds the %.1f s deadline; P(meet) = 0 without sampling",
				bound.MinMakespan, cfg.Deadline)
			out.Audit.Verdicts = append(out.Audit.Verdicts, v)
			out.Audit.PrunedCount++
			sp.SetAttr("fate", "pruned")
			sp.End()
			continue
		}
		opts := cfg.Opts
		opts.Market = model
		res, err := Measure(t, alg, opts, cfg.Deadline, cfg.Config)
		if err != nil {
			sp.End()
			return SearchResult{}, err
		}
		res.Market = c.Market
		b := bound
		res.Bound = &b
		out.Results = append(out.Results, res)
		out.Sampled += res.N
		v.Fate = "sampled"
		v.MeetProbability = res.MeetProbability
		v.MeanCostUSD = res.Cost.Mean
		v.Met = res.MeetProbability >= cfg.Target
		out.Audit.Verdicts = append(out.Audit.Verdicts, v)
		out.Audit.SampledCount++
		sp.SetAttr("fate", "sampled")
		sp.End()
	}

	sort.SliceStable(out.Results, func(i, j int) bool {
		a, b := out.Results[i], out.Results[j]
		if a.Cost.Mean != b.Cost.Mean {
			return a.Cost.Mean < b.Cost.Mean
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.Market < b.Market
	})
	for i := range out.Results {
		if out.Results[i].MeetProbability >= cfg.Target {
			out.Best = &out.Results[i]
			out.auditWinner(cfg.Target)
			return out, nil
		}
	}
	// Nothing qualifies: surface the highest-probability candidate (ties
	// broken by the cost order above) so callers can report how close the
	// portfolio came.
	bestP := math.Inf(-1)
	for i := range out.Results {
		if out.Results[i].MeetProbability > bestP {
			out.Best, bestP = &out.Results[i], out.Results[i].MeetProbability
		}
	}
	out.auditWinner(cfg.Target)
	return out, ErrNoStrategyMeets
}

// auditWinner finalizes the audit once Best is chosen: it marks the
// winning verdict, fills every sampled candidate's rationale relative to
// the winner, and writes the overall rationale line.
func (sr *SearchResult) auditWinner(target float64) {
	a := &sr.Audit
	switch {
	case sr.Best == nil:
		a.Rationale = fmt.Sprintf("every candidate's certain minimum exceeds the %.1f s deadline", sr.Deadline)
	case sr.Best.MeetProbability >= target:
		a.Winner = sr.Best.Strategy + "@" + sr.Best.Market
		a.Rationale = fmt.Sprintf("cheapest sampled candidate meeting P >= %.2f, at p = %.2f and $%.4f mean cost",
			target, sr.Best.MeetProbability, sr.Best.Cost.Mean)
	default:
		a.Winner = sr.Best.Strategy + "@" + sr.Best.Market
		a.Rationale = fmt.Sprintf("no candidate reaches P >= %.2f; best effort is the highest probability, p = %.2f",
			target, sr.Best.MeetProbability)
	}
	for i := range a.Verdicts {
		v := &a.Verdicts[i]
		if v.Fate != "sampled" {
			continue
		}
		winner := sr.Best != nil && v.Strategy == sr.Best.Strategy && v.Market == sr.Best.Market
		v.Winner = winner
		switch {
		case winner && v.Met:
			v.Reason = fmt.Sprintf("cheapest candidate meeting the target (p = %.2f, $%.4f mean)",
				v.MeetProbability, v.MeanCostUSD)
		case winner:
			v.Reason = fmt.Sprintf("best effort: highest meet probability (p = %.2f), target P >= %.2f unmet",
				v.MeetProbability, target)
		case v.Met:
			v.Reason = fmt.Sprintf("meets the target (p = %.2f) but at $%.4f mean cost loses on price",
				v.MeetProbability, v.MeanCostUSD)
		default:
			v.Reason = fmt.Sprintf("meet probability %.2f below the P >= %.2f target", v.MeetProbability, target)
		}
	}
}
