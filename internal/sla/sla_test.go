package sla

import (
	"errors"
	"testing"

	"repro/internal/ndwf"
	"repro/internal/sched"
)

// template: 600s of fixed work plus a 50%-probability 1200s detour.
func template() ndwf.Template {
	return ndwf.Template{
		Name: "sla",
		Root: ndwf.Seq{
			ndwf.Task{Name: "base", Work: 600},
			ndwf.Xor{
				Branches: []ndwf.Block{
					ndwf.Task{Name: "fast", Work: 100},
					ndwf.Task{Name: "slow", Work: 1200},
				},
				Probs: []float64{0.5, 0.5},
			},
		},
	}
}

func TestEvaluateProbabilities(t *testing.T) {
	opts := sched.DefaultOptions()
	// Deadline 800s on small: only the fast branch (700s) fits; the slow
	// branch takes 1800s. Meet probability ~0.5.
	est, err := Evaluate(template(), sched.Baseline(), opts, 800, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeetProbability < 0.4 || est.MeetProbability > 0.6 {
		t.Errorf("meet probability = %v, want ~0.5", est.MeetProbability)
	}
	// A generous deadline is always met.
	est, err = Evaluate(template(), sched.Baseline(), opts, 10000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeetProbability != 1 {
		t.Errorf("generous deadline met with p=%v", est.MeetProbability)
	}
	// An impossible deadline is never met.
	est, err = Evaluate(template(), sched.Baseline(), opts, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeetProbability != 0 {
		t.Errorf("impossible deadline met with p=%v", est.MeetProbability)
	}
}

func TestEvaluateFasterStrategyMeetsMore(t *testing.T) {
	opts := sched.DefaultOptions()
	slow, err := Evaluate(template(), sched.Baseline(), opts, 900, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Evaluate(template(), sched.NewGain(), opts, 900, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeetProbability <= slow.MeetProbability {
		t.Errorf("GAIN meets %v <= baseline %v", fast.MeetProbability, slow.MeetProbability)
	}
	if fast.MeanCost <= slow.MeanCost {
		t.Errorf("GAIN cost %v <= baseline %v — the speed must be paid for", fast.MeanCost, slow.MeanCost)
	}
}

func TestCheapestMeetingPicksCheapQualifier(t *testing.T) {
	opts := sched.DefaultOptions()
	algs := []sched.Algorithm{
		sched.Baseline(),
		sched.NewAllPar1LnS(), // cheap, same makespan profile here
		sched.NewGain(),       // fast, expensive
	}
	// Deadline everyone meets: the cheapest strategy wins.
	best, all, err := CheapestMeeting(template(), algs, opts, 10000, 1.0, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("estimates = %d", len(all))
	}
	for _, est := range all {
		if best.MeanCost > est.MeanCost+1e-9 && est.MeetProbability >= 1.0 {
			t.Errorf("picked %s ($%v) over cheaper qualifier %s ($%v)",
				best.Strategy, best.MeanCost, est.Strategy, est.MeanCost)
		}
	}
	// Unreachable target: ErrNoStrategyMeets with the best effort.
	_, _, err = CheapestMeeting(template(), algs, opts, 1, 1.0, 20, 3)
	if !errors.Is(err, ErrNoStrategyMeets) {
		t.Errorf("err = %v, want ErrNoStrategyMeets", err)
	}
}

func TestValidation(t *testing.T) {
	opts := sched.DefaultOptions()
	if _, err := Evaluate(template(), sched.Baseline(), opts, 0, 10, 1); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := Evaluate(template(), sched.Baseline(), opts, 100, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, _, err := CheapestMeeting(template(), nil, opts, 100, 0.5, 10, 1); err == nil {
		t.Error("empty strategy list accepted")
	}
	if _, _, err := CheapestMeeting(template(), []sched.Algorithm{sched.Baseline()}, opts, 100, 1.5, 10, 1); err == nil {
		t.Error("bad target accepted")
	}
}
