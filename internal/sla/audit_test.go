package sla

import (
	"strings"
	"testing"

	"repro/internal/ndwf"
)

// TestAuditAccountsForWholePortfolio holds Search to the audit invariant:
// every portfolio candidate appears exactly once in the verdict list, the
// pruned/sampled counts sum to the portfolio size, and a met search marks
// exactly one winner consistent with Best.
func TestAuditAccountsForWholePortfolio(t *testing.T) {
	res, err := Search(ndwf.Order(), orderSearchConfig(4000, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Audit
	if a.PortfolioSize != res.Considered {
		t.Fatalf("audit portfolio %d != considered %d", a.PortfolioSize, res.Considered)
	}
	if a.PrunedCount+a.SampledCount != a.PortfolioSize {
		t.Fatalf("%d pruned + %d sampled != %d portfolio",
			a.PrunedCount, a.SampledCount, a.PortfolioSize)
	}
	if len(a.Verdicts) != a.PortfolioSize {
		t.Fatalf("%d verdicts for a portfolio of %d", len(a.Verdicts), a.PortfolioSize)
	}
	seen := map[string]bool{}
	winners := 0
	for _, v := range a.Verdicts {
		key := v.Strategy + "@" + v.Market
		if seen[key] {
			t.Errorf("candidate %s audited twice", key)
		}
		seen[key] = true
		if v.Reason == "" {
			t.Errorf("%s: empty reason", key)
		}
		switch v.Fate {
		case "pruned":
			if v.Winner {
				t.Errorf("%s: pruned candidate marked winner", key)
			}
		case "sampled":
			if v.Winner {
				winners++
			}
		default:
			t.Errorf("%s: fate %q", key, v.Fate)
		}
	}
	if winners != 1 {
		t.Fatalf("met search marked %d winners, want 1", winners)
	}
	if res.Best == nil {
		t.Fatal("met search has no Best")
	}
	if want := res.Best.Strategy + "@" + res.Best.Market; a.Winner != want {
		t.Fatalf("audit winner %q, Best is %q", a.Winner, want)
	}
	if a.Rationale == "" {
		t.Fatal("met search has no winner rationale")
	}
}

// TestAuditAllPruned: an impossible deadline prunes everything; the audit
// still accounts for the whole portfolio with no winner.
func TestAuditAllPruned(t *testing.T) {
	res, err := Search(ndwf.Order(), orderSearchConfig(1, 0.95))
	if err == nil {
		t.Fatal("1-second deadline reported as satisfiable")
	}
	a := res.Audit
	if a.PrunedCount != a.PortfolioSize || a.SampledCount != 0 {
		t.Fatalf("counts: %d pruned, %d sampled, %d portfolio",
			a.PrunedCount, a.SampledCount, a.PortfolioSize)
	}
	if a.Winner != "" {
		t.Fatalf("all-pruned search has winner %q", a.Winner)
	}
	for _, v := range a.Verdicts {
		if v.Fate != "pruned" {
			t.Errorf("%s@%s: fate %q, want pruned", v.Strategy, v.Market, v.Fate)
		}
	}
}

// TestRenderExplain smoke-tests the human rendering: one row per verdict,
// the winner starred, the rationale on its own line.
func TestRenderExplain(t *testing.T) {
	res, err := Search(ndwf.Order(), orderSearchConfig(4000, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderExplain(res)
	for _, v := range res.Audit.Verdicts {
		if !strings.Contains(out, v.Strategy) {
			t.Errorf("explain output missing candidate %s@%s", v.Strategy, v.Market)
		}
	}
	if lines := strings.Count(out, "\n"); lines < len(res.Audit.Verdicts)+3 {
		t.Errorf("explain output has %d lines for %d verdicts", lines, len(res.Audit.Verdicts))
	}
	if !strings.Contains(out, "*") {
		t.Error("explain output does not star the winner")
	}
	if !strings.Contains(out, res.Audit.Rationale) {
		t.Error("explain output omits the winner rationale")
	}
}
