package sla

import (
	"fmt"
	"strings"
)

// Render formats a search result as the text report the CLIs print: one
// row per sampled candidate in cost order (the selected one starred),
// the pruned candidates with their bounds, and the verdict line.
func Render(sr SearchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadline %.0f s at P >= %.2f\n\n", sr.Deadline, sr.Target)
	fmt.Fprintf(&b, "  %-22s %-14s %7s %15s %10s %10s %10s\n",
		"strategy", "market", "P(meet)", "95% CI", "mean (s)", "p90 (s)", "cost ($)")
	for i := range sr.Results {
		r := &sr.Results[i]
		mark := " "
		if sr.Best == r {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s %-22s %-14s %7.2f [%5.2f, %5.2f] %10.1f %10.1f %10.4f\n",
			mark, r.Strategy, r.Market, r.MeetProbability,
			r.MeetCI.Lo, r.MeetCI.Hi, r.Makespan.Mean, r.Makespan.P90, r.Cost.Mean)
	}
	if len(sr.Pruned) > 0 {
		fmt.Fprintf(&b, "\npruned by analytic bound (certain minimum beyond the deadline):\n")
		for _, p := range sr.Pruned {
			fmt.Fprintf(&b, "  %-22s %-14s min %.1f s\n", p.Strategy, p.Market, p.Bound.MinMakespan)
		}
	}
	b.WriteString("\n")
	switch {
	case sr.Best == nil:
		fmt.Fprintf(&b, "verdict: every candidate pruned — the deadline is below the certain minimum\n")
	case sr.Best.MeetProbability >= sr.Target:
		fmt.Fprintf(&b, "verdict: %s under %s meets the deadline with p = %.2f at $%.4f mean cost\n",
			sr.Best.Strategy, sr.Best.Market, sr.Best.MeetProbability, sr.Best.Cost.Mean)
	default:
		fmt.Fprintf(&b, "verdict: no candidate reaches P >= %.2f; closest is %s under %s at p = %.2f\n",
			sr.Target, sr.Best.Strategy, sr.Best.Market, sr.Best.MeetProbability)
	}
	return b.String()
}
