package sla

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/ndwf"
	"repro/internal/sched"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAnalyticBoundPropagation(t *testing.T) {
	cases := []struct {
		name                string
		root                ndwf.Block
		min, mean, variance float64
	}{
		{"task", ndwf.Task{Name: "a", Work: 100}, 100, 100, 0},
		{"seq", ndwf.Seq{ndwf.Task{Name: "a", Work: 100}, ndwf.Task{Name: "b", Work: 50}}, 150, 150, 0},
		{"par", ndwf.Par{ndwf.Task{Name: "a", Work: 100}, ndwf.Task{Name: "b", Work: 250}}, 250, 250, 0},
		{
			// Mixture of 60 and 120 at even odds: min takes the short
			// branch, mean 90, var E[X^2]-mean^2 = 9000-8100.
			"xor",
			ndwf.Xor{
				Branches: []ndwf.Block{ndwf.Task{Name: "a", Work: 60}, ndwf.Task{Name: "b", Work: 120}},
				Probs:    []float64{0.5, 0.5},
			},
			60, 90, 900,
		},
		{
			// Truncated geometric with p=0.5, max=2: E[N]=1.5, Var[N]=0.25,
			// so a 100-work body gives mean 150 and var 0.25*100^2.
			"loop",
			ndwf.Loop{Body: ndwf.Task{Name: "a", Work: 100}, Repeat: 0.5, Max: 2},
			100, 150, 2500,
		},
	}
	for _, c := range cases {
		b, err := AnalyticBound(ndwf.Template{Name: c.name, Root: c.root}, cloud.Small)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !almost(b.MinMakespan, c.min) || !almost(b.Mean, c.mean) || !almost(b.Var, c.variance) {
			t.Errorf("%s: got {min %v, mean %v, var %v}, want {%v, %v, %v}",
				c.name, b.MinMakespan, b.Mean, b.Var, c.min, c.mean, c.variance)
		}
	}
}

func TestAnalyticBoundScalesWithSpeed(t *testing.T) {
	tpl := ndwf.Order()
	small, err := AnalyticBound(tpl, cloud.Small)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AnalyticBound(tpl, cloud.Large)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(large.MinMakespan*cloud.Large.Speedup(), small.MinMakespan*cloud.Small.Speedup()) {
		t.Errorf("bounds do not scale with speedup: small %v, large %v", small.MinMakespan, large.MinMakespan)
	}
	if large.MinMakespan >= small.MinMakespan {
		t.Errorf("faster type should have smaller bound: small %v, large %v", small.MinMakespan, large.MinMakespan)
	}
}

func TestAnalyticBoundInvalidTemplate(t *testing.T) {
	if _, err := AnalyticBound(ndwf.Template{Name: "empty"}, cloud.Small); err == nil {
		t.Fatal("no error for rootless template")
	}
}

func TestMeetEstimate(t *testing.T) {
	b := Bound{Mean: 100, Var: 0}
	if b.MeetEstimate(99) != 0 || b.MeetEstimate(100) != 1 {
		t.Errorf("zero-variance estimate not a step at the mean")
	}
	b = Bound{Mean: 100, Var: 400}
	if got := b.MeetEstimate(100); !almost(got, 0.5) {
		t.Errorf("estimate at the mean = %v, want 0.5", got)
	}
	if lo, hi := b.MeetEstimate(80), b.MeetEstimate(120); lo >= 0.5 || hi <= 0.5 || lo >= hi {
		t.Errorf("estimate not monotone around the mean: %v, %v", lo, hi)
	}
}

// TestBoundNeverExceedsSampledMakespan is the deterministic version of the
// fuzz property: across strategies and realized instances, no schedule
// ever beats the analytic lower bound taken at BoundType(strategy).
func TestBoundNeverExceedsSampledMakespan(t *testing.T) {
	opts := sched.DefaultOptions()
	for _, tplName := range []string{"order", "montage3"} {
		tpl, err := ndwf.Named(tplName)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"OneVMperTask-s", "AllParExceed-m", "StartParExceed-l", "CPA-Eager", "GAIN"} {
			alg, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := AnalyticBound(tpl, BoundType(alg.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				wf, err := tpl.Sample(InstanceSeed(9, i))
				if err != nil {
					t.Fatal(err)
				}
				s, err := alg.Schedule(wf, opts)
				if err != nil {
					t.Fatal(err)
				}
				if s.Makespan() < b.MinMakespan*(1-1e-9) {
					t.Fatalf("%s on %s instance %d: makespan %v beats bound %v",
						name, tplName, i, s.Makespan(), b.MinMakespan)
				}
			}
		}
	}
}

func TestBoundType(t *testing.T) {
	types := cloud.InstanceTypes()
	fastest := types[len(types)-1]
	cases := []struct {
		name string
		want cloud.InstanceType
	}{
		{"OneVMperTask-s", cloud.Small},
		{"AllParExceed-m", cloud.Medium},
		{"StartParNotExceed-l", cloud.Large},
		{"Whatever-xl", cloud.XLarge},
		{"CPA-Eager", fastest},
		{"GAIN", fastest},
		{"SpotFallback", fastest},
		{"WarmPool4", fastest},
		{"AllPar-1LnS", fastest},
	}
	for _, c := range cases {
		if got := BoundType(c.name); got != c.want {
			t.Errorf("BoundType(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
