package sla

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/frontier"
	"repro/internal/ndwf"
	"repro/internal/sched"
)

func orderSearchConfig(deadline, target float64) SearchConfig {
	return SearchConfig{
		Deadline: deadline,
		Target:   target,
		Config:   Config{Samples: 30, Seed: 17},
		Opts:     sched.DefaultOptions(),
	}
}

func TestSearchFindsCheapestMeeting(t *testing.T) {
	res, err := Search(ndwf.Order(), orderSearchConfig(4000, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best candidate")
	}
	if res.Best.MeetProbability < 0.9 {
		t.Fatalf("best %s does not meet: p = %v", res.Best.Strategy, res.Best.MeetProbability)
	}
	// Results are sorted by mean cost, and nothing cheaper qualifies.
	for _, r := range res.Results {
		if r.Cost.Mean > res.Best.Cost.Mean {
			break
		}
		if &r != res.Best && r.MeetProbability >= 0.9 && r.Cost.Mean < res.Best.Cost.Mean {
			t.Fatalf("cheaper qualifier %s ($%v) not chosen over %s ($%v)",
				r.Strategy, r.Cost.Mean, res.Best.Strategy, res.Best.Cost.Mean)
		}
	}
	if res.Considered != len(res.Results)+len(res.Pruned) {
		t.Fatalf("considered %d != %d sampled + %d pruned",
			res.Considered, len(res.Results), len(res.Pruned))
	}
	for _, r := range res.Results {
		if r.Bound == nil {
			t.Fatalf("%s: no analytic bound attached", r.Strategy)
		}
	}
}

func TestSearchPrunesHopelessCandidates(t *testing.T) {
	// The order template's certain minimum on small instances is well
	// above 400s, so every small-typed strategy must be pruned without
	// sampling, while large-typed ones survive the bound.
	res, err := Search(ndwf.Order(), orderSearchConfig(400, 0.95))
	if !errors.Is(err, ErrNoStrategyMeets) {
		t.Fatalf("expected ErrNoStrategyMeets, got %v", err)
	}
	if len(res.Pruned) == 0 {
		t.Fatal("nothing pruned at a 400s deadline")
	}
	for _, p := range res.Pruned {
		if p.Bound.MinMakespan <= res.Deadline {
			t.Fatalf("%s pruned with bound %v <= deadline %v", p.Strategy, p.Bound.MinMakespan, res.Deadline)
		}
	}
	sampled := res.Sampled
	if want := len(res.Results) * 30; sampled != want {
		t.Fatalf("sampled %d instances, want %d", sampled, want)
	}
}

// TestSearchPruneNeverChangesAcceptance is the safety invariant behind the
// analytic pre-pass, checked exhaustively on the default portfolio: with
// the prune disabled, every candidate that reaches the target must also be
// sampled (not pruned) in the bounded run, with bit-identical results —
// and therefore the selected Best is bit-identical too.
func TestSearchPruneNeverChangesAcceptance(t *testing.T) {
	for _, deadline := range []float64{500, 900, 1500, 4000} {
		cfg := orderSearchConfig(deadline, 0.9)
		bounded, bErr := Search(ndwf.Order(), cfg)
		cfg.NoBound = true
		full, fErr := Search(ndwf.Order(), cfg)
		if len(full.Pruned) != 0 {
			t.Fatalf("deadline %v: NoBound run pruned %d candidates", deadline, len(full.Pruned))
		}
		byKey := make(map[[2]string]Result, len(bounded.Results))
		for _, r := range bounded.Results {
			byKey[[2]string{r.Strategy, r.Market}] = r
		}
		for _, r := range full.Results {
			got, sampled := byKey[[2]string{r.Strategy, r.Market}]
			if r.MeetProbability >= cfg.Target && !sampled {
				t.Fatalf("deadline %v: accepted candidate %s/%s was pruned", deadline, r.Strategy, r.Market)
			}
			if sampled && !reflect.DeepEqual(got, r) {
				t.Fatalf("deadline %v: %s/%s differs between bounded and full run", deadline, r.Strategy, r.Market)
			}
		}
		if (bErr == nil) != (fErr == nil) {
			t.Fatalf("deadline %v: bounded err %v, full err %v", deadline, bErr, fErr)
		}
		if bErr == nil && !reflect.DeepEqual(bounded.Best, full.Best) {
			t.Fatalf("deadline %v: best differs: %s vs %s", deadline, bounded.Best.Strategy, full.Best.Strategy)
		}
	}
}

// TestSearchBitIdentical is the acceptance criterion's reproducibility
// half: repeated runs and different worker counts give byte-identical
// search results on the seeded Montage template.
func TestSearchBitIdentical(t *testing.T) {
	tpl, err := ndwf.Named("montage")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SearchConfig{
		Deadline: 20000,
		Target:   0.95,
		Config:   Config{Samples: 15, Seed: 23},
		Opts:     sched.DefaultOptions(),
		Markets:  []string{"none", "ondemand-min"},
	}
	first, err := Search(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 7} {
		cfg.Workers = workers
		again, err := Search(tpl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("search result differs at %d workers", workers)
		}
	}
}

func TestSearchExplicitCandidates(t *testing.T) {
	cands := []frontier.Candidate{
		{Strategy: "OneVMperTask-s", Market: "none"},
		{Strategy: "AllParExceed-l", Market: "ondemand-sec"},
	}
	cfg := orderSearchConfig(4000, 0.5)
	cfg.Candidates = cands
	res, err := Search(ndwf.Order(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 2 {
		t.Fatalf("considered %d, want 2", res.Considered)
	}
	for _, r := range res.Results {
		if r.Market == "" {
			t.Fatalf("%s: market not recorded", r.Strategy)
		}
	}
}

func TestSearchRejectsBadInputs(t *testing.T) {
	tpl := ndwf.Order()
	if _, err := Search(tpl, SearchConfig{Deadline: 0, Target: 0.9, Config: Config{Samples: 5}}); err == nil {
		t.Error("no error for zero deadline")
	}
	if _, err := Search(tpl, SearchConfig{Deadline: 100, Target: 0, Config: Config{Samples: 5}}); err == nil {
		t.Error("no error for zero target")
	}
	if _, err := Search(tpl, SearchConfig{Deadline: 100, Target: 1.5, Config: Config{Samples: 5}}); err == nil {
		t.Error("no error for target > 1")
	}
	cfg := orderSearchConfig(100, 0.9)
	cfg.Candidates = []frontier.Candidate{{Strategy: "nope", Market: "none"}}
	if _, err := Search(tpl, cfg); err == nil {
		t.Error("no error for unknown strategy")
	}
	cfg.Candidates = []frontier.Candidate{{Strategy: "GAIN", Market: "nope"}}
	if _, err := Search(tpl, cfg); err == nil {
		t.Error("no error for unknown market")
	}
}
