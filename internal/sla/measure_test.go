package sla

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/ndwf"
	"repro/internal/sched"
)

func TestMeasureBasics(t *testing.T) {
	tpl := ndwf.Order()
	alg := sched.Baseline()
	res, err := Measure(tpl, alg, sched.DefaultOptions(), 3600, Config{Samples: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 50 || len(res.Makespans) != 50 || len(res.Costs) != 50 {
		t.Fatalf("wrong sample counts: %+v", res)
	}
	if res.Completed != 50 {
		t.Fatalf("fault-free run not fully completed: %d", res.Completed)
	}
	if res.MeetProbability < 0 || res.MeetProbability > 1 {
		t.Fatalf("illegal meet probability %v", res.MeetProbability)
	}
	if p := res.MeetProbability; p < res.MeetCI.Lo || p > res.MeetCI.Hi {
		t.Fatalf("point estimate %v outside Wilson interval [%v, %v]", p, res.MeetCI.Lo, res.MeetCI.Hi)
	}
	if res.Makespan.N != 50 || res.Cost.N != 50 {
		t.Fatalf("summaries not over all samples: %+v", res)
	}
	if res.Strategy != alg.Name() {
		t.Fatalf("strategy %q", res.Strategy)
	}
	if got := res.MakespanECDF().At(res.Makespan.Max); got != 1 {
		t.Fatalf("ECDF at max = %v", got)
	}
}

// TestMeasureWorkerCountInvariance is the bit-reproducibility contract:
// the entire Result — every float — is identical at any worker count.
func TestMeasureWorkerCountInvariance(t *testing.T) {
	tpl, err := ndwf.Named("montage3")
	if err != nil {
		t.Fatal(err)
	}
	alg, err := sched.ByName("AllParExceed-m")
	if err != nil {
		t.Fatal(err)
	}
	var base Result
	for i, workers := range []int{1, 3, 16} {
		res, err := Measure(tpl, alg, sched.DefaultOptions(), 5000,
			Config{Samples: 40, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("result differs at %d workers", workers)
		}
	}
}

// TestMeasureDeadlineAtSamplePoint pins the inclusive comparison: a
// deadline exactly on an observed makespan counts as met, mirroring
// stats.Percentile's closed upper clamp.
func TestMeasureDeadlineAtSamplePoint(t *testing.T) {
	// A deterministic template: every instance is the same chain, so all
	// makespans are equal and the deadline can land exactly on them.
	tpl := ndwf.Template{Name: "det", Root: ndwf.Seq{
		ndwf.Task{Name: "a", Work: 100},
		ndwf.Task{Name: "b", Work: 200},
	}}
	alg := sched.Baseline()
	probe, err := Measure(tpl, alg, sched.DefaultOptions(), 1, Config{Samples: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := probe.Makespan.Max
	res, err := Measure(tpl, alg, sched.DefaultOptions(), m, Config{Samples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met != 10 || res.MeetProbability != 1 {
		t.Fatalf("deadline exactly at sample point: met %d, p %v", res.Met, res.MeetProbability)
	}
	below, err := Measure(tpl, alg, sched.DefaultOptions(), math.Nextafter(m, 0), Config{Samples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if below.Met != 0 {
		t.Fatalf("deadline just below sample point: met %d", below.Met)
	}
}

func TestMakespanQuantileClamps(t *testing.T) {
	r := Result{Makespans: []float64{30, 10, 20}}
	cases := []struct{ q, want float64 }{
		{-1, 10}, {0, 10}, {0.5, 20}, {1, 30}, {2, 30},
	}
	for _, c := range cases {
		if got := r.MakespanQuantile(c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMeasureWithFaults(t *testing.T) {
	tpl := ndwf.Order()
	alg := sched.Baseline()
	fc := &fault.Config{TaskFailProb: 0.4, Recovery: fault.Fail, Seed: 5}
	res, err := Measure(tpl, alg, sched.DefaultOptions(), 1e6,
		Config{Samples: 40, Seed: 5, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= res.N {
		t.Fatalf("expected some aborted replays at 40%% fail prob with Fail recovery, completed %d/%d",
			res.Completed, res.N)
	}
	// Incomplete replays miss the deadline no matter how generous it is.
	if res.Met != res.Completed {
		t.Fatalf("with a huge deadline every completed run should meet: met %d, completed %d",
			res.Met, res.Completed)
	}
	// Same invariance contract under faults.
	again, err := Measure(tpl, alg, sched.DefaultOptions(), 1e6,
		Config{Samples: 40, Seed: 5, Faults: fc, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("faulty measurement differs across worker counts")
	}
}

func TestMeasureParanoid(t *testing.T) {
	tpl := ndwf.Order()
	if _, err := Measure(tpl, sched.Baseline(), sched.DefaultOptions(), 3600,
		Config{Samples: 10, Seed: 3, Paranoid: true}); err != nil {
		t.Fatalf("paranoid cross-check failed on a healthy schedule: %v", err)
	}
}

func TestMeasureRejectsBadInputs(t *testing.T) {
	tpl := ndwf.Order()
	if _, err := Measure(tpl, sched.Baseline(), sched.DefaultOptions(), 0, Config{Samples: 5}); err == nil {
		t.Error("no error for zero deadline")
	}
	if _, err := Measure(tpl, sched.Baseline(), sched.DefaultOptions(), 100, Config{}); err == nil {
		t.Error("no error for zero samples")
	}
	bad := ndwf.Template{Name: "bad"}
	if _, err := Measure(bad, sched.Baseline(), sched.DefaultOptions(), 100, Config{Samples: 5}); err == nil {
		t.Error("no error for invalid template")
	}
}

// TestEvaluateMeanAccumulation pins the sum-then-divide-once semantics of
// Evaluate's means: they must equal, bit for bit, a reference loop that
// sums the per-instance outcomes and divides exactly once. (The old code
// divided every term by n inside the loop, compounding a rounding step
// per iteration.)
func TestEvaluateMeanAccumulation(t *testing.T) {
	tpl := ndwf.Order()
	alg := sched.Baseline()
	opts := sched.DefaultOptions()
	const n, seed = 7, 42
	est, err := Evaluate(tpl, alg, opts, 1200, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var costSum, makespanSum float64
	for i := 0; i < n; i++ {
		wf, err := tpl.Sample(seed + uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		s, err := alg.Schedule(wf, opts)
		if err != nil {
			t.Fatal(err)
		}
		costSum += s.TotalCost()
		makespanSum += s.Makespan()
	}
	if est.MeanCost != costSum/n || est.MeanMakespan != makespanSum/n {
		t.Fatalf("means not sum-then-divide-once: got (%.17g, %.17g), want (%.17g, %.17g)",
			est.MeanCost, est.MeanMakespan, costSum/n, makespanSum/n)
	}
	// A deterministic template: every instance identical, so the mean must
	// equal the single-instance value up to one rounding step.
	det := ndwf.Template{Name: "det", Root: ndwf.Task{Name: "only", Work: 500}}
	wf, err := det.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := alg.Schedule(wf, opts)
	if err != nil {
		t.Fatal(err)
	}
	destEst, err := Evaluate(det, alg, opts, 1e6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(destEst.MeanCost-s.TotalCost()) > 1e-12*s.TotalCost() {
		t.Fatalf("deterministic mean cost %v != %v", destEst.MeanCost, s.TotalCost())
	}
}
