// Package dot exports workflows and schedules in Graphviz DOT syntax for
// visual inspection: workflow graphs show tasks (labelled with their
// reference work) and data edges; schedule graphs additionally cluster
// tasks by the VM that hosts them.
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dag"
	"repro/internal/plan"
)

// Workflow writes the DAG as a digraph.
func Workflow(w io.Writer, wf *dag.Workflow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", sanitize(wf.Name))
	for _, t := range wf.Tasks() {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%.0fs\"];\n", t.ID, escape(t.Name), t.Work)
	}
	for _, e := range wf.Edges() {
		if e.Data > 0 {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.0fMB\"];\n", e.From, e.To, e.Data/(1<<20))
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Schedule writes the schedule as a digraph with one cluster per VM.
func Schedule(w io.Writer, s *plan.Schedule) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", sanitize(s.Workflow.Name+"-schedule"))
	for _, vm := range s.VMs {
		if len(vm.Slots) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_vm%d {\n    label=\"vm%d (%s, $%.3f)\";\n",
			vm.ID, vm.ID, vm.Type, vm.Cost())
		for _, slot := range vm.Slots {
			t := s.Workflow.Task(slot.Task)
			fmt.Fprintf(&b, "    t%d [label=\"%s\\n[%.0f, %.0f)\"];\n",
				t.ID, escape(t.Name), slot.Start, slot.End)
		}
		b.WriteString("  }\n")
	}
	for _, e := range s.Workflow.Edges() {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

func escape(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
