package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workflows"
)

func TestWorkflowDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := Workflow(&buf, workflows.CSTEM()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t0", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Every task appears.
	wf := workflows.CSTEM()
	for _, task := range wf.Tasks() {
		if !strings.Contains(out, task.Name) {
			t.Errorf("DOT missing task %q", task.Name)
		}
	}
}

func TestScheduleDOTClustersByVM(t *testing.T) {
	wf := workflows.Fig1SubWorkflow()
	s, err := sched.Baseline().Schedule(wf, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Schedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "subgraph cluster_vm"); got != s.VMCount() {
		t.Errorf("clusters = %d, want %d", got, s.VMCount())
	}
	if !strings.Contains(out, "$") {
		t.Error("clusters should show VM cost")
	}
}

func TestSanitizeAndEscape(t *testing.T) {
	if got := sanitize("a b/c"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
	if got := escape(`x"y`); got != `x\"y` {
		t.Errorf("escape = %q", got)
	}
}
