package fault

import (
	"math"
	"testing"
)

func TestRecoveryParseRoundTrip(t *testing.T) {
	for _, r := range Recoveries() {
		got, err := ParseRecovery(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRecovery(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRecovery("reboot-the-universe"); err == nil {
		t.Error("bogus recovery accepted")
	}
	if got, err := ParseRecovery("RESUBMIT"); err != nil || got != Resubmit {
		t.Errorf("case-insensitive parse = %v, %v", got, err)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	c := Config{CrashRate: 0.1}.Fill()
	if c.MaxRetries != DefaultMaxRetries {
		t.Errorf("MaxRetries = %d, want %d", c.MaxRetries, DefaultMaxRetries)
	}
	if c.BackoffS != DefaultBackoffS || c.MaxBackoffS != DefaultMaxBackoffS {
		t.Errorf("backoff = %v/%v, want defaults", c.BackoffS, c.MaxBackoffS)
	}
	// A negative MaxRetries means "no retries", not the default.
	if got := (Config{MaxRetries: -1}).Fill().MaxRetries; got != 0 {
		t.Errorf("Fill(MaxRetries: -1) = %d, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CrashRate: -1},
		{TaskFailProb: -0.5},
		{TaskFailProb: 1.5},
		{BackoffS: -3},
		{MaxBackoffS: -3},
		{RebootS: -1},
		{Recovery: Recovery(42)},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
	if err := (Config{CrashRate: 0.3, TaskFailProb: 0.1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestActive(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Active() {
		t.Error("nil config active")
	}
	if (&Config{}).Active() {
		t.Error("zero config active")
	}
	if !(&Config{CrashRate: 0.01}).Active() || !(&Config{TaskFailProb: 0.01}).Active() {
		t.Error("non-zero rates inactive")
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	in, err := NewInjector(Config{TaskFailProb: 0.5, BackoffS: 10, MaxBackoffS: 45})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 40, 45, 45}
	for k, w := range want {
		if got := in.Backoff(k + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", k+1, got, w)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{CrashRate: 0.2, TaskFailProb: 0.3, Seed: 99}
	a, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewInjector(cfg)
	for inc := uint64(0); inc < 50; inc++ {
		if a.CrashAfter(inc) != b.CrashAfter(inc) {
			t.Fatalf("CrashAfter(%d) differs between equal injectors", inc)
		}
	}
	for task := 0; task < 20; task++ {
		for attempt := 1; attempt <= 3; attempt++ {
			af, afr := a.AttemptFails(task, attempt)
			bf, bfr := b.AttemptFails(task, attempt)
			if af != bf || afr != bfr {
				t.Fatalf("AttemptFails(%d, %d) differs", task, attempt)
			}
		}
	}
	// Draws are order-independent: asking again returns the same value.
	if a.CrashAfter(7) != a.CrashAfter(7) {
		t.Error("CrashAfter is not a pure function of its identity")
	}
}

func TestInjectorSeedMatters(t *testing.T) {
	a, _ := NewInjector(Config{CrashRate: 0.2, Seed: 1})
	b, _ := NewInjector(Config{CrashRate: 0.2, Seed: 2})
	same := 0
	for inc := uint64(0); inc < 32; inc++ {
		if a.CrashAfter(inc) == b.CrashAfter(inc) {
			same++
		}
	}
	if same == 32 {
		t.Error("different seeds produced identical crash streams")
	}
}

func TestCrashAfterExponentialMean(t *testing.T) {
	// Rate 1 crash per VM-hour: mean lifetime 3600 s. The empirical mean
	// over many incarnations must land near it.
	in, _ := NewInjector(Config{CrashRate: 1, Seed: 5})
	const n = 20000
	var sum float64
	for inc := uint64(0); inc < n; inc++ {
		life := in.CrashAfter(inc)
		if life <= 0 || math.IsInf(life, 1) {
			t.Fatalf("CrashAfter(%d) = %v", inc, life)
		}
		sum += life
	}
	mean := sum / n
	if mean < 3600*0.95 || mean > 3600*1.05 {
		t.Errorf("empirical mean lifetime %v, want ~3600", mean)
	}
}

func TestCrashAfterZeroRateNeverCrashes(t *testing.T) {
	in, _ := NewInjector(Config{TaskFailProb: 0.5})
	for inc := uint64(0); inc < 100; inc++ {
		if !math.IsInf(in.CrashAfter(inc), 1) {
			t.Fatalf("zero-rate injector crashed incarnation %d", inc)
		}
	}
}

func TestAttemptFailsFrequency(t *testing.T) {
	in, _ := NewInjector(Config{TaskFailProb: 0.25, Seed: 3})
	const n = 20000
	fails := 0
	for task := 0; task < n; task++ {
		if failed, frac := in.AttemptFails(task, 1); failed {
			fails++
			if frac < 0 || frac >= 1 {
				t.Fatalf("failure fraction %v outside [0, 1)", frac)
			}
		}
	}
	got := float64(fails) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("empirical failure rate %v, want ~0.25", got)
	}
}

func TestCellSeedSeparatesCells(t *testing.T) {
	seen := map[uint64]string{}
	for _, wf := range []string{"Montage", "CSTEM"} {
		for _, sc := range []string{"Pareto", "Best case"} {
			for _, alg := range []string{"HEFT-s", "GAIN"} {
				s := CellSeed(42, wf, sc, alg)
				if prev, dup := seen[s]; dup {
					t.Errorf("cells %q and %s/%s/%s share seed %d", prev, wf, sc, alg, s)
				}
				seen[s] = wf + "/" + sc + "/" + alg
			}
		}
	}
	if CellSeed(1, "a") == CellSeed(2, "a") {
		t.Error("CellSeed ignores the base seed")
	}
	if CellSeed(1, "ab", "c") == CellSeed(1, "a", "bc") {
		t.Error("CellSeed concatenates parts ambiguously")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		c, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := c.Fill().Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if c, err := Preset("none"); err != nil || c.Active() {
		t.Errorf("Preset(none) = %+v, %v; want inactive", c, err)
	}
	if _, err := Preset("apocalypse"); err == nil {
		t.Error("unknown preset accepted")
	}
}
