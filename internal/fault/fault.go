// Package fault models the imperfect cloud the paper's evaluation assumes
// away: VMs that crash mid-lease (a Poisson process per VM-hour, the IaaS
// failure model of the probabilistic-scheduling literature) and tasks that
// abort transiently partway through an attempt (a per-attempt Bernoulli
// draw). The simulator in internal/sim consumes a Config through its
// fault-injection hook and recovers according to the configured policy.
//
// Every stochastic decision is a pure function of (Seed, entity identity,
// attempt number): the injector derives one splitmix64 stream per decision
// instead of consuming a shared sequential stream. Two runs with the same
// seed and the same fault configuration therefore make bit-identical
// draws regardless of event interleaving, and a parallel sweep is as
// reproducible as a serial one.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Recovery enumerates the policies deciding what happens after a fault.
type Recovery int

const (
	// Retry re-runs a failed attempt on the same VM after a capped
	// exponential backoff. A crashed VM is replaced in place (same type,
	// fresh lease) and its surviving queue re-runs there.
	Retry Recovery = iota
	// Resubmit moves a failed task to a freshly provisioned VM of the same
	// type, paying a new BTU and the replacement boot lag.
	Resubmit
	// Fail aborts the whole workflow on the first fault; the run reports
	// the completed fraction instead of a makespan for the full DAG.
	Fail
)

// Recoveries lists the policies in presentation order.
func Recoveries() []Recovery { return []Recovery{Retry, Resubmit, Fail} }

// String returns the CLI name of the policy.
func (r Recovery) String() string {
	switch r {
	case Retry:
		return "retry"
	case Resubmit:
		return "resubmit"
	case Fail:
		return "fail"
	}
	return fmt.Sprintf("Recovery(%d)", int(r))
}

// ParseRecovery resolves a policy by its CLI name, case-insensitively.
func ParseRecovery(s string) (Recovery, error) {
	for _, r := range Recoveries() {
		if strings.EqualFold(r.String(), s) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown recovery policy %q (valid: retry, resubmit, fail)", s)
}

// Default recovery parameters, applied by Fill for zero fields.
const (
	// DefaultMaxRetries bounds the re-execution attempts per task beyond
	// the first one.
	DefaultMaxRetries = 5
	// DefaultBackoffS is the base delay of the capped exponential backoff.
	DefaultBackoffS = 30.0
	// DefaultMaxBackoffS caps the exponential backoff.
	DefaultMaxBackoffS = 600.0
)

// Config describes one fault scenario. The zero value (no crashes, no
// task failures) is the paper's perfect cloud.
type Config struct {
	// CrashRate is the expected number of VM crashes per VM-hour of lease
	// time (the rate of an exponential time-to-failure). Zero disables
	// crashes.
	CrashRate float64
	// TaskFailProb is the probability that one execution attempt of a task
	// aborts partway through. Zero disables transient failures.
	TaskFailProb float64
	// SpotPreemptRate is the expected number of provider reclamations per
	// spot-VM-hour (the rate of an exponential time-to-preemption). It is
	// the market layer's crash cause: only leases bought on the spot
	// market (internal/market) draw from it, via their own hash-derived
	// stream and their own reliability counters, distinct from CrashRate's
	// hardware crashes. Zero disables preemptions; a non-zero rate over a
	// schedule with no spot leases changes nothing.
	SpotPreemptRate float64
	// Recovery selects the reaction to a fault.
	Recovery Recovery
	// MaxRetries bounds the extra attempts per task after a transient
	// failure; once exceeded the workflow fails. Zero selects
	// DefaultMaxRetries; use a negative value for "no retries".
	MaxRetries int
	// BackoffS and MaxBackoffS parameterize the retry policy's capped
	// exponential backoff (delay = min(BackoffS·2^(k−1), MaxBackoffS) before
	// retry k). Zero selects the defaults.
	BackoffS    float64
	MaxBackoffS float64
	// RebootS is the boot lag of replacement VMs (crash replacements and
	// resubmission targets) — recovered capacity is not instant.
	RebootS float64
	// Seed drives every stochastic draw. Same seed, same faults.
	Seed uint64
}

// Active reports whether the configuration injects any fault at all
// (spot preemptions included — they only bite schedules with spot
// leases, but an injector must be armed for them).
func (c *Config) Active() bool {
	return c != nil && (c.CrashRate > 0 || c.TaskFailProb > 0 || c.SpotPreemptRate > 0)
}

// Fill replaces zero recovery parameters with the defaults and returns the
// config for chaining.
func (c Config) Fill() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffS == 0 {
		c.BackoffS = DefaultBackoffS
	}
	if c.MaxBackoffS == 0 {
		c.MaxBackoffS = DefaultMaxBackoffS
	}
	return c
}

// Validate rejects impossible parameters.
func (c Config) Validate() error {
	switch {
	case c.CrashRate < 0:
		return fmt.Errorf("fault: negative crash rate %v", c.CrashRate)
	case c.SpotPreemptRate < 0:
		return fmt.Errorf("fault: negative spot preemption rate %v", c.SpotPreemptRate)
	case c.TaskFailProb < 0 || c.TaskFailProb > 1:
		return fmt.Errorf("fault: task failure probability %v outside [0, 1]", c.TaskFailProb)
	case c.BackoffS < 0:
		return fmt.Errorf("fault: negative backoff %v", c.BackoffS)
	case c.MaxBackoffS < 0:
		return fmt.Errorf("fault: negative backoff cap %v", c.MaxBackoffS)
	case c.RebootS < 0:
		return fmt.Errorf("fault: negative reboot lag %v", c.RebootS)
	}
	if _, err := ParseRecovery(c.Recovery.String()); err != nil {
		return fmt.Errorf("fault: invalid recovery policy %d", int(c.Recovery))
	}
	return nil
}

// String summarizes the scenario for reports and logs.
func (c Config) String() string {
	if c.SpotPreemptRate > 0 {
		return fmt.Sprintf("faults{crash: %.3g/VM-h, preempt: %.3g/VM-h, task-fail: %.3g, recovery: %s}",
			c.CrashRate, c.SpotPreemptRate, c.TaskFailProb, c.Recovery)
	}
	return fmt.Sprintf("faults{crash: %.3g/VM-h, task-fail: %.3g, recovery: %s}",
		c.CrashRate, c.TaskFailProb, c.Recovery)
}

// Injector makes the stochastic calls of one simulated run. It is
// stateless apart from the configuration: every draw is derived from the
// seed and the identity of the thing being decided, so draws are
// independent of the order the simulator asks in.
type Injector struct {
	cfg Config
}

// NewInjector validates the configuration, fills defaulted fields, and
// returns the injector.
func NewInjector(cfg Config) (*Injector, error) {
	cfg = cfg.Fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the filled configuration the injector runs.
func (in *Injector) Config() Config { return in.cfg }

// MaxAttempts returns the total execution attempts a task is allowed.
func (in *Injector) MaxAttempts() int { return 1 + in.cfg.MaxRetries }

// Domain separators for the per-decision streams. Order is append-only:
// each separator pins the stream identity of its decision class, so
// adding kinds never shifts existing draws.
const (
	kindCrash uint64 = 0xC4A5 + iota
	kindTask
	kindPreempt
)

// stream derives the decision stream for one (kind, a, b) identity.
func (in *Injector) stream(kind, a, b uint64) *stats.RNG {
	return stats.NewRNG(mix(in.cfg.Seed, kind, a, b))
}

// CrashAfter returns how many seconds into its lease VM incarnation inc
// crashes, or +Inf when it survives. Lifetimes are exponential with rate
// CrashRate per hour, the waiting time of the Poisson crash process.
func (in *Injector) CrashAfter(inc uint64) float64 {
	if in.cfg.CrashRate <= 0 {
		return math.Inf(1)
	}
	u := in.stream(kindCrash, inc, 0).Float64()
	return -math.Log(1-u) * 3600 / in.cfg.CrashRate
}

// PreemptAfter returns how many seconds into its lease spot VM
// incarnation inc is reclaimed by the provider, or +Inf when it survives.
// Lifetimes are exponential with rate SpotPreemptRate per hour, drawn
// from a stream disjoint from CrashAfter's — the same incarnation can
// draw both fates, and whichever fires first wins, so crashes and
// preemptions compose without perturbing each other's draws.
func (in *Injector) PreemptAfter(inc uint64) float64 {
	if in.cfg.SpotPreemptRate <= 0 {
		return math.Inf(1)
	}
	u := in.stream(kindPreempt, inc, 0).Float64()
	return -math.Log(1-u) * 3600 / in.cfg.SpotPreemptRate
}

// AttemptFails reports whether attempt (1-based) of the given task aborts,
// and if so at which fraction of its execution time the abort hits.
func (in *Injector) AttemptFails(task, attempt int) (bool, float64) {
	if in.cfg.TaskFailProb <= 0 {
		return false, 0
	}
	r := in.stream(kindTask, uint64(task), uint64(attempt))
	if r.Float64() >= in.cfg.TaskFailProb {
		return false, 0
	}
	return true, r.Float64()
}

// Backoff returns the delay before retry k (1-based): the capped
// exponential min(BackoffS·2^(k−1), MaxBackoffS).
func (in *Injector) Backoff(k int) float64 {
	if k < 1 {
		k = 1
	}
	d := in.cfg.BackoffS * math.Pow(2, float64(k-1))
	if d > in.cfg.MaxBackoffS {
		return in.cfg.MaxBackoffS
	}
	return d
}

// CellSeed derives an independent fault seed for one named experiment cell
// (workflow/scenario/strategy), so sweep cells draw from disjoint streams
// no matter how the driver orders or parallelizes them.
func CellSeed(seed uint64, parts ...string) uint64 {
	h := seed
	for _, p := range parts {
		h = mix(h, uint64(len(p)))
		for i := 0; i < len(p); i++ {
			h = mix(h, uint64(p[i]))
		}
	}
	return h
}

// mix folds the values into one well-scrambled 64-bit hash (splitmix64
// finalizer per step).
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h += v + 0x9E3779B97F4A7C15
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// Presets are named fault scenarios for CLIs and experiment configs: a
// calm region, a flaky one, a hostile stress setting, and two spot-market
// reclamation climates (mild and storm) that only bite schedules with
// spot leases. "none" is the perfect cloud.
//
// New preset names must sort after "none": fuzz corpus entries address
// presets by index into the alphabetical PresetNames, so a name sorting
// earlier would silently remap every committed case.
func Presets() map[string]Config {
	return map[string]Config{
		"none": {},
		"calm": {CrashRate: 0.01, TaskFailProb: 0.002, Recovery: Retry, RebootS: 60},
		"flaky": {CrashRate: 0.05, TaskFailProb: 0.01, Recovery: Resubmit,
			RebootS: 90},
		"hostile": {CrashRate: 0.25, TaskFailProb: 0.05, Recovery: Resubmit,
			RebootS: 120},
		"preempt-mild": {SpotPreemptRate: 0.3, Recovery: Retry, RebootS: 45},
		"preempt-storm": {SpotPreemptRate: 1.5, TaskFailProb: 0.005,
			Recovery: Resubmit, RebootS: 90},
	}
}

// PresetNames lists the preset scenarios alphabetically.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset resolves a named fault scenario.
func Preset(name string) (Config, error) {
	if c, ok := Presets()[strings.ToLower(name)]; ok {
		return c, nil
	}
	return Config{}, fmt.Errorf("fault: unknown preset %q (valid: %s)",
		name, strings.Join(PresetNames(), ", "))
}
