// Package core is the experiment driver reproducing the paper's
// evaluation: it sweeps every workflow (Montage, CSTEM, MapReduce,
// Sequential) across the three execution-time scenarios (Pareto, best
// case, worst case) and all 19 strategies of the catalog, comparing each
// outcome against the HEFT + OneVMperTask-small baseline. The resulting
// grid backs Figures 4 and 5 and Tables III, IV and V (see
// internal/report for rendering, and the analysis methods in this package
// for the table semantics).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/validate"
	"repro/internal/workflows"
	"repro/internal/workload"
)

// Config parameterizes a sweep. The zero value plus Fill() reproduces the
// paper's setup.
type Config struct {
	// Seed drives the Pareto workload draws.
	Seed uint64
	// Region prices the VMs; the paper's default is US East Virginia.
	Region cloud.Region
	// Platform is the network/pricing model; nil selects the default.
	Platform *cloud.Platform
	// Workflows maps display names to structural workflows; nil selects
	// the paper's four. WorkflowOrder fixes the presentation order.
	Workflows     map[string]*dag.Workflow
	WorkflowOrder []string
	// Scenarios lists the execution-time models to sweep; nil selects all
	// three.
	Scenarios []workload.Scenario
	// Strategies lists the algorithms; nil selects the 19-strategy catalog.
	Strategies []sched.Algorithm
	// Paranoid runs the full differential oracle on every schedule: static
	// invariants, a fault-free plan↔sim replay whose timings, lease spans,
	// BTU counts and costs must agree with the analytical plan, and an
	// independent re-derivation of the billing ledger from the event
	// stream. When Faults is also active, each faulty replay's counters
	// are additionally cross-checked against its own event stream. The
	// sweep fails on any disagreement.
	Paranoid bool
	// Faults, when active, additionally replays every schedule through
	// the discrete-event simulator under the given fault model and
	// attaches reliability metrics to each cell. Every cell derives an
	// independent fault seed from Faults.Seed and its own key, so results
	// are reproducible and independent of worker scheduling. A config
	// with zero rates changes nothing: the grid's points stay identical
	// to a fault-free sweep.
	Faults *fault.Config
	// Market, when non-nil, prices every rented VM — the baseline's
	// included, so percentages compare like with like — under the model's
	// lease terms: purchasing market, billing granularity, cold-start
	// delays, warm pool (see internal/market). Nil keeps the paper's
	// economics. Spot preemptions additionally require an active fault
	// model with SpotPreemptRate set.
	Market *market.Model
	// Workers bounds the number of goroutines evaluating grid cells
	// concurrently. Zero selects GOMAXPROCS; one forces serial execution.
	// Results are identical regardless of the worker count — every
	// stochastic input is derived from the per-cell key, not from
	// execution order.
	Workers int
	// Recorder, when non-nil, receives the simulated-time telemetry of
	// every cell: each schedule is replayed through the discrete-event
	// simulator (under Faults when active) with event recording on, and
	// the per-cell streams are delivered in grid order, each introduced
	// by a KindCellStart marker. The stream is byte-identical at any
	// worker count. The sweep's wall-clock execution timeline lands in
	// Sweep.CellSpans instead, keeping wall time out of the deterministic
	// stream.
	Recorder obs.Recorder
	// Progress, when non-nil, is called after each evaluated cell with
	// the running completion count and the grid size. It is called from
	// worker goroutines and must be safe for concurrent use and cheap.
	Progress func(done, total int)
	// Trace, when non-nil, receives one wall-clock span per grid cell
	// (named "cell <workflow>/<scenario>/<strategy>"), parented on
	// TraceSpan — how a service request's trace extends into the sweep.
	// Spans are appended from worker goroutines in completion order; span
	// identity stays deterministic, only timestamps and order carry
	// scheduling noise. Nil (the default) costs one branch per cell.
	Trace     *obs.Trace
	TraceSpan obs.SpanID
	// SLA, when non-nil, is a resolved deadline-constrained portfolio
	// search (an expconf "sla" block) for the driver to run after the
	// grid sweep. It does not affect the grid itself.
	SLA *sla.Job
	// Online, when non-nil, is a resolved continuous-traffic autoscaling
	// run (an expconf "online" block) for the driver to run after the
	// grid sweep. Like SLA, it does not affect the grid itself.
	Online *online.Config
}

// Fill populates nil fields with the paper's defaults and returns the
// config for chaining.
func (c Config) Fill() Config {
	if c.Platform == nil {
		c.Platform = cloud.NewPlatform()
	}
	if c.Workflows == nil {
		c.Workflows = workflows.Paper()
		c.WorkflowOrder = workflows.PaperNames()
	}
	if c.WorkflowOrder == nil {
		for name := range c.Workflows {
			c.WorkflowOrder = append(c.WorkflowOrder, name)
		}
		sort.Strings(c.WorkflowOrder)
	}
	if c.Scenarios == nil {
		c.Scenarios = workload.Scenarios()
	}
	if c.Strategies == nil {
		c.Strategies = sched.Catalog()
	}
	return c
}

// Key addresses one cell of the sweep grid.
type Key struct {
	Workflow string
	Scenario workload.Scenario
	Strategy string
}

// Result is one evaluated cell.
type Result struct {
	Key
	Point metrics.Point
	// Category is the Table III bucket of the point.
	Category metrics.Category
	// BaselineMakespan and BaselineCost anchor the percentages.
	BaselineMakespan float64
	BaselineCost     float64
	// Energy is the schedule's energy accounting under the default model
	// (the paper's closing energy-awareness remark quantified).
	Energy metrics.Energy
	// CoRentRecovered is the money a spot-style sub-lease of the idle time
	// would return at 30% of the on-demand rate (the paper's co-rent
	// suggestion).
	CoRentRecovered float64
	// Reliability is the faulty-replay outcome of the cell; nil when the
	// sweep ran without a fault model (see Config.Faults).
	Reliability *metrics.Reliability
}

// Sweep holds a completed experiment grid.
type Sweep struct {
	Config     Config
	Strategies []string
	// CellSpans is the wall-clock execution timeline of the sweep — one
	// span per evaluated cell, tagged with the worker that ran it. Only
	// populated when Config.Recorder was set; ordered by grid index.
	CellSpans []obs.WallSpan
	results   map[Key]Result
}

// Run executes the sweep. With cfg.Paranoid set it cross-checks every
// schedule against the validator and the discrete-event simulator. Cells
// are evaluated concurrently (see Config.Workers); the result is
// bit-identical to a serial run because every cell derives its inputs
// from its own key.
func Run(cfg Config) (*Sweep, error) {
	cfg = cfg.Fill()
	if cfg.Faults != nil {
		if err := cfg.Faults.Fill().Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Market != nil {
		if err := cfg.Market.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	s := &Sweep{Config: cfg, results: map[Key]Result{}}
	for _, alg := range cfg.Strategies {
		s.Strategies = append(s.Strategies, alg.Name())
	}
	opts := sched.Options{Platform: cfg.Platform, Region: cfg.Region, Market: cfg.Market}
	baseline := sched.Baseline()

	// Phase 1 (serial, cheap): realize the workloads and their baselines.
	type pane struct {
		wfName string
		sc     workload.Scenario
		scName string
		w      *dag.Workflow
		base   *plan.Schedule
	}
	var panes []pane
	oracle := validate.NewScratch()
	for _, wfName := range cfg.WorkflowOrder {
		structural, ok := cfg.Workflows[wfName]
		if !ok {
			return nil, fmt.Errorf("core: workflow %q not in config", wfName)
		}
		for _, sc := range cfg.Scenarios {
			// Apply returns a frozen workflow; from here on it is an immutable
			// snapshot every cell of the pane shares read-only.
			w := sc.Apply(structural, cfg.Seed)
			base, err := baseline.Schedule(w, opts)
			if err != nil {
				return nil, fmt.Errorf("core: baseline on %s/%v: %w", wfName, sc, err)
			}
			if cfg.Paranoid {
				if err := oracle.PlanSim(base); err != nil {
					return nil, fmt.Errorf("core: baseline on %s/%v: %w", wfName, sc, err)
				}
			}
			panes = append(panes, pane{wfName: wfName, sc: sc, scName: sc.String(), w: w, base: base})
		}
	}

	// Phase 2 (parallel): one job per (pane, strategy) cell. Every cell of
	// a pane shares the pane's frozen workflow snapshot read-only — the
	// schedulers never mutate a frozen workflow, and the rank memo the
	// catalog shares per pane is internally synchronized.
	type job struct {
		p   pane
		alg sched.Algorithm
		// algName and cellName are precomputed once per job: Name() calls
		// and the "wf/scenario/strategy" joins showed up in cell-loop
		// profiles when paid per cell.
		algName  string
		cellName string
	}
	jobs := make([]job, 0, len(panes)*len(cfg.Strategies))
	for _, p := range panes {
		for k, alg := range cfg.Strategies {
			name := s.Strategies[k]
			jobs = append(jobs, job{p: p, alg: alg, algName: name,
				cellName: p.wfName + "/" + p.scName + "/" + name})
		}
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	// Per-cell event streams and wall spans, collected independently and
	// merged in grid order after the join so that the recorded stream is
	// identical at any worker count.
	var cellEvents [][]obs.Event
	var spans []obs.WallSpan
	if cfg.Recorder != nil {
		cellEvents = make([][]obs.Event, len(jobs))
		spans = make([]obs.WallSpan, len(jobs))
	}
	runStart := time.Now()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64 = -1
	var done int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			// Per-worker scratch: the oracle's ledger and replay arenas, the
			// simulator's arenas and result, and an event collector — all
			// reset per cell, reallocated never. The batch shares the pane's
			// baseline and replay scratch across the strategies this worker
			// evaluates on the pane; jobs are pane-major, so each worker sees
			// every pane as one contiguous run of cells.
			oracle := validate.NewScratch()
			var simSc sim.Scratch
			var simRes sim.Result
			var reCol obs.Collector
			var batch *sched.Batch
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				if batch == nil || batch.Workflow() != j.p.w {
					batch = sched.NewBatchWithBaseline(j.p.w, opts, j.p.base)
				}
				t0 := time.Since(runStart)
				cellSpan := cfg.Trace.StartSpan("cell "+j.cellName, cfg.TraceSpan)
				sch, err := batch.Schedule(j.alg)
				if err != nil {
					errs[i] = fmt.Errorf("core: %s on %s/%v: %w", j.alg.Name(), j.p.wfName, j.p.sc, err)
					cellSpan.End()
					continue
				}
				if cfg.Paranoid {
					if err := oracle.PlanSim(sch); err != nil {
						errs[i] = fmt.Errorf("core: %s on %s/%v: %w", j.alg.Name(), j.p.wfName, j.p.sc, err)
						cellSpan.End()
						continue
					}
				}
				point := metrics.Compare(j.algName, sch, j.p.base)
				recovered, _ := metrics.CoRent(sch, coRentRate)
				results[i] = Result{
					Key:              Key{Workflow: j.p.wfName, Scenario: j.p.sc, Strategy: j.algName},
					Point:            point,
					Category:         metrics.Classify(point),
					BaselineMakespan: j.p.base.Makespan(),
					BaselineCost:     j.p.base.TotalCost(),
					Energy:           metrics.DefaultEnergyModel().Energy(sch),
					CoRentRecovered:  recovered,
				}
				// A cell replays through the simulator when the sweep runs
				// under a fault model (for reliability metrics), when
				// telemetry is requested, or both in one pass.
				if cfg.Faults.Active() || cfg.Recorder != nil {
					sc := sim.Config{}
					if cfg.Faults.Active() {
						// Each cell replays under its own derived fault seed:
						// deterministic, and independent of the order workers
						// pick up jobs.
						fc := *cfg.Faults
						fc.Seed = fault.CellSeed(fc.Seed, j.p.wfName, j.p.scName, j.algName)
						sc.Faults = &fc
					}
					var col *obs.Collector
					if cfg.Recorder != nil {
						// The cell's events escape into the grid-order merge,
						// so the recorder path needs a fresh collector.
						col = &obs.Collector{}
						sc.Recorder = col
					} else if cfg.Paranoid && sc.Faults != nil {
						// Paranoid fault mode needs the event stream even when
						// no recorder was requested: the oracle re-derives the
						// ledger from it. Nothing escapes, so the worker's
						// collector is reused.
						reCol.Events = reCol.Events[:0]
						col = &reCol
						sc.Recorder = col
					}
					fres := &simRes
					if err := simSc.Run(sch, sc, fres); err != nil {
						errs[i] = fmt.Errorf("core: replay of %s on %s/%v: %w",
							j.alg.Name(), j.p.wfName, j.p.sc, err)
						cellSpan.End()
						continue
					}
					if cfg.Paranoid && sc.Faults != nil {
						// Fault-mode oracle: the Result's counters must agree
						// with an accounting derived from the events alone.
						acc, err := oracle.Account(col.Events)
						if err == nil {
							err = validate.CrossCheck(fres, acc)
						}
						if err != nil {
							errs[i] = fmt.Errorf("core: fault oracle on %s of %s/%v: %w",
								j.alg.Name(), j.p.wfName, j.p.sc, err)
							cellSpan.End()
							continue
						}
					}
					if cfg.Faults.Active() {
						rel := metrics.ReliabilityOf(sch, fres)
						results[i].Reliability = &rel
					}
					if cfg.Recorder != nil {
						cellEvents[i] = col.Events
					}
				}
				if cfg.Recorder != nil {
					spans[i] = obs.WallSpan{
						Name:   j.cellName,
						Worker: wkr,
						Start:  t0,
						End:    time.Since(runStart),
					}
				}
				cellSpan.End()
				if cfg.Progress != nil {
					cfg.Progress(int(atomic.AddInt64(&done, 1)), len(jobs))
				}
			}
		}(wkr)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		s.results[results[i].Key] = results[i]
	}
	// Replay the per-cell streams into the recorder in grid order, each
	// behind its marker: the stream's bytes depend only on the grid and the
	// seeds, never on worker interleaving.
	if cfg.Recorder != nil {
		for i, j := range jobs {
			cfg.Recorder.Record(obs.Event{
				Kind: obs.KindCellStart, VM: -1, Task: -1,
				Label: j.cellName,
			})
			for _, ev := range cellEvents[i] {
				cfg.Recorder.Record(ev)
			}
		}
		s.CellSpans = spans
	}
	return s, nil
}

// coRentRate is the assumed spot-style clearing rate for sub-leasing idle
// VM time, as a fraction of the on-demand price.
const coRentRate = 0.3

// Get returns one cell.
func (s *Sweep) Get(wf string, sc workload.Scenario, strategy string) (Result, bool) {
	r, ok := s.results[Key{Workflow: wf, Scenario: sc, Strategy: strategy}]
	return r, ok
}

// MustGet returns one cell and panics when it is absent — for analysis
// code that iterates the sweep's own axes.
func (s *Sweep) MustGet(wf string, sc workload.Scenario, strategy string) Result {
	r, ok := s.Get(wf, sc, strategy)
	if !ok {
		panic(fmt.Sprintf("core: missing cell %s/%v/%s", wf, sc, strategy))
	}
	return r
}

// Points returns the cells of one workflow/scenario pane in catalog order —
// one pane of Fig. 4 (gain/loss) or Fig. 5 (idle).
func (s *Sweep) Points(wf string, sc workload.Scenario) []Result {
	out := make([]Result, 0, len(s.Strategies))
	for _, name := range s.Strategies {
		if r, ok := s.Get(wf, sc, name); ok {
			out = append(out, r)
		}
	}
	return out
}

// Workflows returns the workflow axis in presentation order.
func (s *Sweep) Workflows() []string { return s.Config.WorkflowOrder }

// Scenarios returns the scenario axis.
func (s *Sweep) Scenarios() []workload.Scenario { return s.Config.Scenarios }

// Len returns the number of evaluated cells.
func (s *Sweep) Len() int { return len(s.results) }
