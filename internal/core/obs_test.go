package core

import (
	"bytes"
	"testing"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workflows"
	"repro/internal/workload"
)

// obsConfig is a small grid (1 workflow x 1 scenario x 3 strategies) with
// a fresh Collector attached.
func obsConfig(t *testing.T, workers int) (Config, *obs.Collector) {
	t.Helper()
	var algs []sched.Algorithm
	for _, name := range []string{"OneVMperTask-s", "AllParExceed-s", "GAIN"} {
		alg, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, alg)
	}
	col := &obs.Collector{}
	return Config{
		Seed:       42,
		Workflows:  map[string]*dag.Workflow{"Montage": workflows.Montage(4)},
		Scenarios:  []workload.Scenario{workload.Pareto},
		Strategies: algs,
		Workers:    workers,
		Recorder:   col,
	}, col
}

// The event stream is part of the sweep's deterministic output: the same
// seed must yield a byte-identical stream at any worker count, because
// cells are replayed into the recorder in grid order after the workers
// finish, never interleaved.
func TestEventStreamWorkerCountInvariant(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		cfg, col := obsConfig(t, workers)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if len(col.Events) == 0 {
			t.Fatal("recorder saw no events")
		}
		var buf bytes.Buffer
		if err := obs.WriteNDJSON(&buf, col.Events); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("event stream with %d workers differs from 1 worker (%d vs %d bytes)",
				workers, buf.Len(), len(want))
		}
	}
}

func TestRecorderStreamShape(t *testing.T) {
	cfg, col := obsConfig(t, 2)
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One cell marker per grid cell, each naming its cell, before any of
	// the cell's events.
	var markers []string
	for _, ev := range col.Events {
		if ev.Kind == obs.KindCellStart {
			markers = append(markers, ev.Label)
		}
	}
	if len(markers) != s.Len() {
		t.Errorf("cell markers = %d, want %d cells", len(markers), s.Len())
	}
	if col.Events[0].Kind != obs.KindCellStart {
		t.Errorf("stream starts with %v, want cell_start", col.Events[0].Kind)
	}
	// Wall-clock spans: one per cell, well-formed, worker in range.
	if len(s.CellSpans) != s.Len() {
		t.Fatalf("CellSpans = %d, want %d", len(s.CellSpans), s.Len())
	}
	for _, sp := range s.CellSpans {
		if sp.End < sp.Start || sp.Name == "" {
			t.Errorf("malformed span %+v", sp)
		}
		if sp.Worker < 0 || sp.Worker >= 2 {
			t.Errorf("span worker %d out of range", sp.Worker)
		}
	}
}

// Without a recorder (and without faults) the sweep must not pay for
// replays or span bookkeeping.
func TestNoRecorderNoSpans(t *testing.T) {
	cfg, _ := obsConfig(t, 1)
	cfg.Recorder = nil
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.CellSpans != nil {
		t.Errorf("CellSpans allocated without a recorder: %d", len(s.CellSpans))
	}
}
