package core

import (
	"sort"

	"repro/internal/workload"
)

// ParetoFront returns the non-dominated strategies of one
// workflow/scenario pane in the (makespan, cost) plane: no other strategy
// is both faster and cheaper. The paper's "target square" asks which
// strategies beat the baseline on both axes; the front generalizes that to
// the full trade-off curve a user picks an operating point from. Results
// are ordered by increasing makespan (hence decreasing cost along the
// front); ties collapse onto the first strategy in catalog order.
func (s *Sweep) ParetoFront(wf string, sc workload.Scenario) []Result {
	points := s.Points(wf, sc)
	front := make([]Result, 0, len(points))
	for _, candidate := range points {
		dominated := false
		for _, other := range points {
			if other.Strategy == candidate.Strategy {
				continue
			}
			// other dominates candidate if it is no worse on both axes and
			// strictly better on at least one.
			if other.Point.Makespan <= candidate.Point.Makespan+1e-9 &&
				other.Point.Cost <= candidate.Point.Cost+1e-9 &&
				(other.Point.Makespan < candidate.Point.Makespan-1e-9 ||
					other.Point.Cost < candidate.Point.Cost-1e-9) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, candidate)
		}
	}
	// Collapse exact duplicates (equal makespan and cost) onto one entry.
	sort.SliceStable(front, func(i, j int) bool {
		if front[i].Point.Makespan != front[j].Point.Makespan {
			return front[i].Point.Makespan < front[j].Point.Makespan
		}
		return front[i].Point.Cost < front[j].Point.Cost
	})
	out := front[:0]
	for _, r := range front {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last.Point.Makespan == r.Point.Makespan && last.Point.Cost == r.Point.Cost {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
