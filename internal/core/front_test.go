package core

import (
	"testing"

	"repro/internal/workload"
)

func TestParetoFrontNonDominated(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, sc := range s.Scenarios() {
			front := s.ParetoFront(wf, sc)
			if len(front) == 0 {
				t.Fatalf("%s/%v: empty front", wf, sc)
			}
			// No member may be dominated by any strategy in the pane.
			for _, member := range front {
				for _, other := range s.Points(wf, sc) {
					if other.Point.Makespan < member.Point.Makespan-1e-9 &&
						other.Point.Cost < member.Point.Cost-1e-9 {
						t.Errorf("%s/%v: %s on the front is dominated by %s",
							wf, sc, member.Strategy, other.Strategy)
					}
				}
			}
			// Sorted by makespan, costs non-increasing along the front.
			for i := 1; i < len(front); i++ {
				if front[i].Point.Makespan < front[i-1].Point.Makespan {
					t.Errorf("%s/%v: front not sorted by makespan", wf, sc)
				}
				if front[i].Point.Cost > front[i-1].Point.Cost+1e-9 {
					t.Errorf("%s/%v: cost rises along the front (%v -> %v)",
						wf, sc, front[i-1].Point.Cost, front[i].Point.Cost)
				}
			}
		}
	}
}

func TestParetoFrontContainsExtremes(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		front := s.ParetoFront(wf, workload.Pareto)
		points := s.Points(wf, workload.Pareto)
		var minMk, minCost float64 = 1e18, 1e18
		for _, r := range points {
			if r.Point.Makespan < minMk {
				minMk = r.Point.Makespan
			}
			if r.Point.Cost < minCost {
				minCost = r.Point.Cost
			}
		}
		foundFast, foundCheap := false, false
		for _, r := range front {
			if r.Point.Makespan <= minMk+1e-9 {
				foundFast = true
			}
			if r.Point.Cost <= minCost+1e-9 {
				foundCheap = true
			}
		}
		if !foundFast || !foundCheap {
			t.Errorf("%s: front misses an extreme (fast %v, cheap %v)", wf, foundFast, foundCheap)
		}
	}
}

func TestParetoFrontOnParetoPaneIsSmall(t *testing.T) {
	// Sanity: most of the 19 strategies are dominated; the front is a
	// small curve.
	s := sweep(t)
	for _, wf := range s.Workflows() {
		front := s.ParetoFront(wf, workload.Pareto)
		if len(front) > 10 {
			t.Errorf("%s: front has %d members — dominance check suspect", wf, len(front))
		}
	}
}
