// The name registry: one source of truth mapping user-supplied names to
// catalog strategies and built-in workflows, shared by every front end
// (cmd/wfsim, cmd/sweep via internal/expconf, cmd/ndflow, and the
// internal/service daemon), so that a strategy or workflow name accepted
// anywhere is accepted everywhere.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/ndwf"
	"repro/internal/sched"
	"repro/internal/workflows"
)

var (
	strategyOnce  sync.Once
	strategyNames []string
	strategyByLC  map[string]sched.Algorithm // keyed by lowercased label
)

func strategyIndex() {
	strategyOnce.Do(func() {
		// The 19-strategy catalog in figure order, then the hedging
		// provisioners (SpotFallback, WarmPool4) — the market-aware
		// wrappers every front end should accept by name.
		all := append(sched.Catalog(), sched.Hedges()...)
		strategyNames = make([]string, len(all))
		strategyByLC = make(map[string]sched.Algorithm, len(all))
		for i, a := range all {
			strategyNames[i] = a.Name()
			strategyByLC[strings.ToLower(a.Name())] = a
		}
	})
}

// StrategyNames returns the strategy labels every front end accepts: the
// catalog in figure order followed by the hedging provisioners. The
// returned slice is shared and must not be modified.
func StrategyNames() []string {
	strategyIndex()
	return strategyNames
}

// StrategyByName resolves a catalog strategy by its figure label. Lookup
// is case-insensitive, so "allparexceed-m" and "AllParExceed-m" name the
// same strategy; the error lists the valid labels. The lookup map is built
// once; catalog algorithms are stateless, so sharing them is safe.
func StrategyByName(name string) (sched.Algorithm, error) {
	strategyIndex()
	if a, ok := strategyByLC[strings.ToLower(name)]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("core: unknown strategy %q (valid: %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// WorkflowNames returns the built-in workflow display names in
// presentation order (the extended corpus plus the Fig. 1 toy DAG).
func WorkflowNames() []string {
	return append(workflows.ExtendedNames(), "Fig1")
}

// GeneratorSpecs documents the parametric generator grammar NamedWorkflow
// accepts beyond the display names: a lowercase generator name with an
// optional numeric suffix, e.g. "montage24" or "mapreduce16x8".
func GeneratorSpecs() []string {
	return []string{
		"montage[n]", "cstem", "mapreduce[mxr]", "sequential[n]",
		"layered[dxw]", "epigenomics[n]", "inspiral[gxw]", "cybershake[n]",
	}
}

// NamedWorkflow resolves a built-in workflow by name. Two forms are
// accepted, both case-insensitive:
//
//   - a display name: "Montage", "CSTEM", "MapReduce", "Sequential",
//     "Epigenomics", "Inspiral", "CyberShake", "Fig1" — the paper's
//     parameterization of each shape;
//   - a generator spec: a generator name with an optional size suffix,
//     "montage24" (Montage with 24-tile width), "sequential20",
//     "mapreduce16x8" (16 mappers, 8 reducers), "layered3x4",
//     "epigenomics6", "inspiral2x5", "cybershake12". Without a suffix the
//     generator uses the paper's defaults.
//
// The returned workflow is structural: task weights still carry the
// generator's nominal work values until a workload scenario re-weights
// them.
func NamedWorkflow(name string) (*dag.Workflow, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty workflow name")
	}
	for dn, wf := range workflows.Extended() {
		if strings.EqualFold(dn, name) {
			return wf, nil
		}
	}
	if strings.EqualFold(name, "Fig1") {
		return workflows.Fig1SubWorkflow(), nil
	}

	base, a, b, err := splitGenerator(strings.ToLower(name))
	if err != nil {
		return nil, err
	}
	pick := func(v, def int) int {
		if v > 0 {
			return v
		}
		return def
	}
	switch base {
	case "montage":
		return workflows.Montage(pick(a, 6)), nil
	case "cstem":
		if a > 0 {
			return nil, fmt.Errorf("core: workflow %q: cstem takes no size parameter", name)
		}
		return workflows.CSTEM(), nil
	case "mapreduce":
		return workflows.MapReduce(pick(a, 8), pick(b, 4)), nil
	case "sequential":
		return workflows.Sequential(pick(a, 10)), nil
	case "layered":
		return workflows.Layered(pick(a, 3), pick(b, 4)), nil
	case "epigenomics":
		return workflows.Epigenomics(pick(a, 4)), nil
	case "inspiral":
		return workflows.Inspiral(pick(a, 2), pick(b, 3)), nil
	case "cybershake":
		return workflows.CyberShake(pick(a, 8)), nil
	}
	valid := append(WorkflowNames(), GeneratorSpecs()...)
	sort.Strings(valid)
	return nil, fmt.Errorf("core: unknown workflow %q (valid: %s)",
		name, strings.Join(valid, ", "))
}

// TemplateNames returns the built-in non-deterministic template names
// NamedTemplate resolves ("montage" also takes a tile-count suffix).
func TemplateNames() []string { return ndwf.TemplateNames() }

// NamedTemplate resolves a built-in non-deterministic workflow template
// by name, the template counterpart of NamedWorkflow: "order",
// "montage", or "montage<n>" (case-insensitive). These feed the SLA
// layer, where a deadline question needs a distribution over instances
// rather than one fixed DAG.
func NamedTemplate(name string) (ndwf.Template, error) {
	if name == "" {
		return ndwf.Template{}, fmt.Errorf("core: empty template name")
	}
	return ndwf.Named(name)
}

// splitGenerator separates "mapreduce16x8" into ("mapreduce", 16, 8).
// Missing parameters come back as 0 (caller substitutes defaults).
func splitGenerator(s string) (base string, a, b int, err error) {
	i := len(s)
	for i > 0 && (s[i-1] >= '0' && s[i-1] <= '9' || s[i-1] == 'x') {
		i--
	}
	base, suffix := s[:i], s[i:]
	if suffix == "" {
		return base, 0, 0, nil
	}
	parts := strings.Split(suffix, "x")
	if len(parts) > 2 {
		return "", 0, 0, fmt.Errorf("core: workflow %q: bad size suffix %q", s, suffix)
	}
	nums := make([]int, len(parts))
	for j, p := range parts {
		n, perr := strconv.Atoi(p)
		if perr != nil || n <= 0 {
			return "", 0, 0, fmt.Errorf("core: workflow %q: bad size suffix %q", s, suffix)
		}
		nums[j] = n
	}
	a = nums[0]
	if len(nums) == 2 {
		b = nums[1]
	}
	return base, a, b, nil
}
