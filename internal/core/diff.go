package core

import (
	"fmt"
	"math"
	"sort"
)

// Sweep diffing: compare two runs of the grid — different seeds, regions,
// or model revisions — and surface the cells whose classification flipped
// and those whose numbers moved most. This is the regression lens for
// model changes and the sensitivity lens for input changes.

// CellDiff records one cell present in both sweeps.
type CellDiff struct {
	Key
	GainDelta float64
	LossDelta float64
	// CategoryChanged reports a Table III reclassification.
	CategoryChanged     bool
	BeforeCat, AfterCat string
}

// Magnitude returns the larger absolute delta of the two axes.
func (d CellDiff) Magnitude() float64 {
	return math.Max(math.Abs(d.GainDelta), math.Abs(d.LossDelta))
}

// Diff compares two sweeps cell-by-cell and returns the differences sorted
// by decreasing magnitude (category flips first). Cells present in only
// one sweep are skipped; an error is returned when the sweeps share no
// cells at all.
func Diff(before, after *Sweep) ([]CellDiff, error) {
	var out []CellDiff
	for _, wf := range before.Workflows() {
		for _, sc := range before.Scenarios() {
			for _, strat := range before.Strategies {
				b, ok := before.Get(wf, sc, strat)
				if !ok {
					continue
				}
				a, ok := after.Get(wf, sc, strat)
				if !ok {
					continue
				}
				out = append(out, CellDiff{
					Key:             b.Key,
					GainDelta:       a.Point.GainPct - b.Point.GainPct,
					LossDelta:       a.Point.LossPct - b.Point.LossPct,
					CategoryChanged: a.Category != b.Category,
					BeforeCat:       b.Category.String(),
					AfterCat:        a.Category.String(),
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: sweeps share no cells")
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].CategoryChanged != out[j].CategoryChanged {
			return out[i].CategoryChanged
		}
		return out[i].Magnitude() > out[j].Magnitude()
	})
	return out, nil
}

// Flips filters a diff down to the category reclassifications.
func Flips(diffs []CellDiff) []CellDiff {
	var out []CellDiff
	for _, d := range diffs {
		if d.CategoryChanged {
			out = append(out, d)
		}
	}
	return out
}
