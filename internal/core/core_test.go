package core

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/metrics"
	"repro/internal/workflows"
	"repro/internal/workload"
)

// paperSweep runs the full paranoid sweep once per test binary; the
// paper-shape assertions below all read from it.
var paperSweep *Sweep

func sweep(t *testing.T) *Sweep {
	t.Helper()
	if paperSweep == nil {
		s, err := Run(Config{Seed: 42, Paranoid: true})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		paperSweep = s
	}
	return paperSweep
}

func TestSweepCoversFullGrid(t *testing.T) {
	s := sweep(t)
	if got := s.Len(); got != 4*3*19 {
		t.Errorf("cells = %d, want %d", got, 4*3*19)
	}
	if len(s.Strategies) != 19 {
		t.Errorf("strategies = %d", len(s.Strategies))
	}
	for _, wf := range s.Workflows() {
		for _, sc := range s.Scenarios() {
			if got := len(s.Points(wf, sc)); got != 19 {
				t.Errorf("%s/%v: %d points", wf, sc, got)
			}
		}
	}
}

func TestBaselineSitsAtOrigin(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, sc := range s.Scenarios() {
			r := s.MustGet(wf, sc, "OneVMperTask-s")
			if math.Abs(r.Point.GainPct) > 1e-9 || math.Abs(r.Point.LossPct) > 1e-9 {
				t.Errorf("%s/%v: baseline at (%v, %v), want origin",
					wf, sc, r.Point.GainPct, r.Point.LossPct)
			}
		}
	}
}

// Table IV's headline: the AllPar[Not]Exceed gain is pinned to the
// instance speed-up (0%, ~37%, ~52%) while the savings fluctuate.
func TestTable4StableGainPerInstanceType(t *testing.T) {
	s := sweep(t)
	rows := s.Table4()
	if len(rows) != 3 {
		t.Fatalf("Table4 rows = %d, want 3", len(rows))
	}
	wantGain := map[cloud.InstanceType][2]float64{
		cloud.Small:  {-5, 5},
		cloud.Medium: {33, 40},
		cloud.Large:  {49, 55},
	}
	for _, row := range rows {
		lohi := wantGain[row.Type]
		if row.MeanGainPct < lohi[0] || row.MeanGainPct > lohi[1] {
			t.Errorf("%v: mean gain %.1f%% outside [%v, %v]", row.Type, row.MeanGainPct, lohi[0], lohi[1])
		}
		if len(row.LossByWorkflow) != 4 {
			t.Errorf("%v: loss intervals for %d workflows", row.Type, len(row.LossByWorkflow))
		}
		// The per-type max interval must cover every per-workflow interval.
		for wf, iv := range row.LossByWorkflow {
			if iv.Lo < row.MaxLoss.Lo-1e-9 || iv.Hi > row.MaxLoss.Hi+1e-9 {
				t.Errorf("%v/%s: interval %v outside max %v", row.Type, wf, iv, row.MaxLoss)
			}
		}
	}
	// Small instances never lose money with AllPar[Not]Exceed on the
	// Pareto and best-case workloads (paper: "the only case in which
	// savings are positive").
	for _, wf := range s.Workflows() {
		for _, sc := range []workload.Scenario{workload.Pareto, workload.BestCase} {
			for _, strat := range []string{"AllParExceed-s", "AllParNotExceed-s"} {
				if r := s.MustGet(wf, sc, strat); r.Point.LossPct > 1e-9 {
					t.Errorf("%s/%v/%s: loss %v > 0", wf, sc, strat, r.Point.LossPct)
				}
			}
		}
	}
}

// The paper's economics: OneVMperTask on bigger instances buys its gain at
// an outsized price — +100% for medium, up to +300% for large.
func TestOneVMperTaskCostExplodes(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, sc := range s.Scenarios() {
			// >= 30: in the worst case BTU rounding softens the medium
			// premium (3 small BTUs vs 2 medium BTUs = +33%).
			m := s.MustGet(wf, sc, "OneVMperTask-m")
			if m.Point.LossPct < 30 {
				t.Errorf("%s/%v: OneVMperTask-m loss %v, want >= 30", wf, sc, m.Point.LossPct)
			}
			l := s.MustGet(wf, sc, "OneVMperTask-l")
			if l.Point.LossPct < 150 {
				t.Errorf("%s/%v: OneVMperTask-l loss %v, want >= 150", wf, sc, l.Point.LossPct)
			}
		}
		// Best case: every task still fits one BTU, so the loss is exactly
		// the price ratio: 100% (medium), 300% (large).
		m := s.MustGet(wf, workload.BestCase, "OneVMperTask-m")
		if math.Abs(m.Point.LossPct-100) > 1e-6 {
			t.Errorf("%s: best-case OneVMperTask-m loss = %v, want 100", wf, m.Point.LossPct)
		}
		l := s.MustGet(wf, workload.BestCase, "OneVMperTask-l")
		if math.Abs(l.Point.LossPct-300) > 1e-6 {
			t.Errorf("%s: best-case OneVMperTask-l loss = %v, want 300", wf, l.Point.LossPct)
		}
	}
}

// Sect. IV-B's scenario boundaries: the best case makes NotExceed
// indistinguishable from Exceed; the worst case collapses the NotExceed
// strategies onto OneVMperTask.
func TestScenarioBoundaryCollapses(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, suffix := range []string{"-s", "-m", "-l"} {
			for _, pair := range [][2]string{
				{"StartParNotExceed", "StartParExceed"},
				{"AllParNotExceed", "AllParExceed"},
			} {
				a := s.MustGet(wf, workload.BestCase, pair[0]+suffix)
				b := s.MustGet(wf, workload.BestCase, pair[1]+suffix)
				if math.Abs(a.Point.GainPct-b.Point.GainPct) > 1e-6 ||
					math.Abs(a.Point.LossPct-b.Point.LossPct) > 1e-6 {
					t.Errorf("%s best case: %s%s != %s%s", wf, pair[0], suffix, pair[1], suffix)
				}
			}
		}
		for _, strat := range []string{"StartParNotExceed-s", "AllParNotExceed-s"} {
			r := s.MustGet(wf, workload.WorstCase, strat)
			if math.Abs(r.Point.GainPct) > 1e-6 || math.Abs(r.Point.LossPct) > 1e-6 {
				t.Errorf("%s worst case: %s at (%v, %v), want OneVMperTask's origin",
					wf, strat, r.Point.GainPct, r.Point.LossPct)
			}
		}
	}
}

// Fig. 5's idle-time ordering: StartParExceed wastes the least, the
// OneVMperTask family (and its derivatives GAIN/CPA-Eager) the most.
func TestIdleTimeOrdering(t *testing.T) {
	s := sweep(t)
	heavy := map[string]bool{
		"OneVMperTask-s": true, "OneVMperTask-m": true, "OneVMperTask-l": true,
		"GAIN": true, "CPA-Eager": true,
	}
	for _, wf := range s.Workflows() {
		spe := s.MustGet(wf, workload.Pareto, "StartParExceed-s").Point.IdleTime
		one := s.MustGet(wf, workload.Pareto, "OneVMperTask-s").Point.IdleTime
		if spe > one {
			t.Errorf("%s: StartParExceed-s idle %v exceeds OneVMperTask-s %v", wf, spe, one)
		}
		top := s.IdleRanking(wf, workload.Pareto)[0]
		if !heavy[top.Strategy] {
			t.Errorf("%s: largest idle from %s, expected a OneVMperTask-family strategy",
				wf, top.Strategy)
		}
	}
}

// The paper's conclusion on the dynamic strategies: AllPar1LnSDyn never
// loses money (it stays on the savings side of the square in every case).
func TestAllPar1LnSDynNeverLosesMoney(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, sc := range s.Scenarios() {
			for _, strat := range []string{"AllPar1LnS", "AllPar1LnSDyn"} {
				if r := s.MustGet(wf, sc, strat); r.Point.LossPct > 1e-9 {
					t.Errorf("%s/%v: %s loses %v%%", wf, sc, strat, r.Point.LossPct)
				}
			}
		}
	}
}

func TestTable3GroupsEqualOutcomes(t *testing.T) {
	s := sweep(t)
	rows := s.Table3()
	if len(rows) != 12 {
		t.Fatalf("Table3 rows = %d, want 12", len(rows))
	}
	for _, row := range rows {
		for cat, groups := range row.Groups {
			if cat == metrics.OutOfSquare {
				t.Errorf("%s/%v: out-of-square strategies listed in Table III", row.Workflow, row.Scenario)
			}
			for _, group := range groups {
				if len(group) == 0 {
					t.Errorf("%s/%v: empty equivalence group", row.Workflow, row.Scenario)
				}
				// Every member of a group must indeed have equal outcomes
				// (grouping rounds to one decimal, so members may differ
				// by just under 0.1 percentage points).
				first := s.MustGet(row.Workflow, row.Scenario, group[0]).Point
				for _, name := range group[1:] {
					p := s.MustGet(row.Workflow, row.Scenario, name).Point
					if math.Abs(p.GainPct-first.GainPct) > 0.1 ||
						math.Abs(p.LossPct-first.LossPct) > 0.1 {
						t.Errorf("%s/%v: %s grouped with %s but outcomes differ",
							row.Workflow, row.Scenario, name, group[0])
					}
				}
			}
		}
	}
	// Worst case must exhibit the paper's "= 0" group: for every workflow
	// the NotExceed trio collapses into one group at the origin.
	for _, row := range rows {
		if row.Scenario != workload.WorstCase {
			continue
		}
		found := false
		for _, groups := range row.Groups {
			for _, g := range groups {
				has := map[string]bool{}
				for _, n := range g {
					has[n] = true
				}
				if has["StartParNotExceed-s"] && has["AllParNotExceed-s"] && has["OneVMperTask-s"] {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s worst case: missing the collapsed '= 0' group", row.Workflow)
		}
	}
}

func TestFormatGroups(t *testing.T) {
	got := FormatGroups([][]string{{"A", "B"}, {"C"}})
	if got != "A = B, C" {
		t.Errorf("FormatGroups = %q", got)
	}
}

func TestTable5RecommendsForEveryWorkflowAndGoal(t *testing.T) {
	s := sweep(t)
	recs, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("recommendations = %d, want 12", len(recs))
	}
	for _, rec := range recs {
		if rec.Strategy == "" {
			t.Errorf("%s/%v: empty recommendation", rec.Workflow, rec.Goal)
		}
		// A savings recommendation must actually save money on average.
		if rec.Goal == Savings && rec.Point.LossPct > 1e-9 {
			t.Errorf("%s: savings recommendation %s loses %v%% in the Pareto case",
				rec.Workflow, rec.Strategy, rec.Point.LossPct)
		}
	}
	// The paper's Table V savings column: AllPar1LnSDyn-family or other
	// never-losing strategies dominate. Assert the sequential workflow's
	// savings pick is a single-VM-style strategy (huge savings available).
	for _, rec := range recs {
		if rec.Workflow == "Sequential" && rec.Goal == Savings {
			if rec.Point.SavingsPct() < 50 {
				t.Errorf("Sequential savings pick %s saves only %v%%", rec.Strategy, rec.Point.SavingsPct())
			}
		}
	}
}

func TestRecommendUnknownWorkflow(t *testing.T) {
	s := sweep(t)
	if _, err := s.Recommend("NoSuchWorkflow", Savings); err == nil {
		t.Error("Recommend on unknown workflow succeeded")
	}
}

func TestGoalStrings(t *testing.T) {
	want := map[Goal]string{Savings: "Savings", GainGoal: "Gain", Balance: "Balance"}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("%d.String() = %q", g, g.String())
		}
	}
}

func TestConfigFillDefaults(t *testing.T) {
	cfg := Config{}.Fill()
	if cfg.Platform == nil || len(cfg.Workflows) != 4 ||
		len(cfg.Scenarios) != 3 || len(cfg.Strategies) != 19 {
		t.Errorf("Fill() incomplete: %+v", cfg)
	}
	if len(cfg.WorkflowOrder) != 4 {
		t.Errorf("WorkflowOrder = %v", cfg.WorkflowOrder)
	}
}

func TestRunUnknownWorkflowInOrder(t *testing.T) {
	cfg := Config{}.Fill()
	cfg.WorkflowOrder = append(cfg.WorkflowOrder, "Ghost")
	if _, err := Run(cfg); err == nil {
		t.Error("Run with ghost workflow succeeded")
	}
}

func TestSweepSeedsChangeParetoOnly(t *testing.T) {
	a, err := Run(Config{Seed: 1, Scenarios: []workload.Scenario{workload.BestCase}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Scenarios: []workload.Scenario{workload.BestCase}})
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range a.Workflows() {
		for _, strat := range a.Strategies {
			pa := a.MustGet(wf, workload.BestCase, strat).Point
			pb := b.MustGet(wf, workload.BestCase, strat).Point
			if pa.GainPct != pb.GainPct || pa.LossPct != pb.LossPct {
				t.Errorf("%s/%s: deterministic scenario varied with seed", wf, strat)
			}
		}
	}
}

// Worker count must be invisible in the sweep's numbers: the per-worker
// scratch (oracle ledgers, sim arenas, per-pane batches) is reset state,
// never shared state, so the golden tables a 16-worker paranoid sweep
// produces are exactly the 1-worker tables.
func TestParallelSweepMatchesSerial(t *testing.T) {
	serial, err := Run(Config{Seed: 42, Paranoid: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		parallel, err := Run(Config{Seed: 42, Paranoid: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Len() != parallel.Len() {
			t.Fatalf("cell counts differ: %d vs %d", serial.Len(), parallel.Len())
		}
		for _, wf := range serial.Workflows() {
			for _, sc := range serial.Scenarios() {
				for _, strat := range serial.Strategies {
					a := serial.MustGet(wf, sc, strat)
					b := parallel.MustGet(wf, sc, strat)
					if a.Point != b.Point || a.Category != b.Category ||
						a.Energy != b.Energy || a.CoRentRecovered != b.CoRentRecovered {
						t.Fatalf("%s/%v/%s: %d-worker result differs from serial",
							wf, sc, strat, workers)
					}
				}
			}
		}
	}
}

func TestSweepDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range a.Workflows() {
		for _, sc := range a.Scenarios() {
			for _, strat := range a.Strategies {
				if a.MustGet(wf, sc, strat).Point != b.MustGet(wf, sc, strat).Point {
					t.Fatalf("%s/%v/%s: sweep not deterministic", wf, sc, strat)
				}
			}
		}
	}
}

func TestDiffIdenticalSweepsIsQuiet(t *testing.T) {
	a, err := Run(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != a.Len() {
		t.Errorf("diff cells = %d, want %d", len(diffs), a.Len())
	}
	for _, d := range diffs {
		if d.Magnitude() != 0 || d.CategoryChanged {
			t.Fatalf("identical sweeps differ at %v", d.Key)
		}
	}
	if got := Flips(diffs); len(got) != 0 {
		t.Errorf("flips on identical sweeps: %d", len(got))
	}
}

func TestDiffDetectsSeedSensitivity(t *testing.T) {
	a, err := Run(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Pareto cells move with the draw; the deterministic best/worst cells
	// stay exactly put.
	moved := 0
	for _, d := range diffs {
		if d.Scenario != workload.Pareto {
			if d.Magnitude() != 0 {
				t.Fatalf("deterministic cell %v moved across seeds", d.Key)
			}
			continue
		}
		if d.Magnitude() > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no Pareto cell moved between seeds")
	}
	// The ordering contract: flips (if any) lead, then by magnitude.
	for i := 1; i < len(diffs); i++ {
		if diffs[i].CategoryChanged && !diffs[i-1].CategoryChanged {
			t.Fatal("flips not sorted first")
		}
		if diffs[i].CategoryChanged == diffs[i-1].CategoryChanged &&
			diffs[i].Magnitude() > diffs[i-1].Magnitude()+1e-9 {
			t.Fatal("diffs not sorted by magnitude")
		}
	}
}

func TestDiffDisjointSweepsFails(t *testing.T) {
	a, err := Run(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{
		Seed:          5,
		Workflows:     map[string]*dag.Workflow{"Solo": workflows.CSTEM()},
		WorkflowOrder: []string{"Solo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(a, b); err == nil {
		t.Error("disjoint sweeps diffed successfully")
	}
}
