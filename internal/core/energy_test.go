package core

import (
	"testing"

	"repro/internal/workload"
)

func TestSweepEnergyAccounting(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		base := s.MustGet(wf, workload.Pareto, "OneVMperTask-s")
		packed := s.MustGet(wf, workload.Pareto, "StartParExceed-s")
		if base.Energy.TotalJ <= 0 {
			t.Fatalf("%s: zero energy for baseline", wf)
		}
		// The idle-heavy baseline wastes a larger energy fraction than the
		// packed single-VM policy (the paper's energy remark).
		if base.Energy.WastedFraction <= packed.Energy.WastedFraction {
			t.Errorf("%s: OneVMperTask wasted %v <= StartParExceed %v", wf,
				base.Energy.WastedFraction, packed.Energy.WastedFraction)
		}
		// Busy energy is strategy-independent for equal instance types
		// (same work, same speed-up, same cores).
		if base.Energy.BusyJ <= 0 || packed.Energy.BusyJ <= 0 {
			t.Errorf("%s: missing busy energy", wf)
		}
	}
}

func TestSweepCoRentRecovery(t *testing.T) {
	s := sweep(t)
	for _, wf := range s.Workflows() {
		for _, r := range s.Points(wf, workload.Pareto) {
			if r.CoRentRecovered < 0 {
				t.Errorf("%s/%s: negative co-rent", wf, r.Strategy)
			}
			// Recovery can never exceed the rental bill itself.
			if r.CoRentRecovered > r.Point.Cost+1e-9 {
				t.Errorf("%s/%s: co-rent %v exceeds cost %v",
					wf, r.Strategy, r.CoRentRecovered, r.Point.Cost)
			}
		}
		// More idle, more recovery: the baseline recovers more dollars
		// than the packed single-VM policy.
		base := s.MustGet(wf, workload.Pareto, "OneVMperTask-s")
		packed := s.MustGet(wf, workload.Pareto, "StartParExceed-s")
		if base.CoRentRecovered <= packed.CoRentRecovered {
			t.Errorf("%s: baseline recovers %v <= packed %v", wf,
				base.CoRentRecovered, packed.CoRentRecovered)
		}
	}
}
