package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/workload"
)

// faultCfg is the stress scenario of the sweep determinism tests: strong
// enough that faults actually land in most cells.
func faultCfg(seed uint64) *fault.Config {
	return &fault.Config{
		CrashRate:    0.5,
		TaskFailProb: 0.02,
		Recovery:     fault.Resubmit,
		RebootS:      60,
		Seed:         seed,
	}
}

func TestFaultSweepAllStrategiesComplete(t *testing.T) {
	// The full 19-strategy catalog on one pane, replayed under faults:
	// every cell must carry reliability metrics.
	s, err := Run(Config{Seed: 1, Scenarios: []workload.Scenario{workload.Pareto}, Faults: faultCfg(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Strategies) != 19 {
		t.Fatalf("strategies = %d, want 19", len(s.Strategies))
	}
	sawFault := false
	for _, wf := range s.Workflows() {
		for _, name := range s.Strategies {
			r := s.MustGet(wf, workload.Pareto, name)
			if r.Reliability == nil {
				t.Fatalf("%s/%s: no reliability metrics", wf, name)
			}
			if r.Reliability.VMCrashes > 0 || r.Reliability.TaskFailures > 0 {
				sawFault = true
			}
			if !r.Reliability.Completed && r.Reliability.FailReason == "" {
				t.Errorf("%s/%s: incomplete without a reason", wf, name)
			}
		}
	}
	if !sawFault {
		t.Error("stress fault config injected nothing across the whole grid")
	}
}

func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// Same seed + same fault config ⇒ identical grids, serial or parallel:
	// each cell derives its fault stream from its key, not from execution
	// order.
	base := Config{Seed: 3, Scenarios: []workload.Scenario{workload.Pareto}, Faults: faultCfg(11)}
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8

	a, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(parallel) // and a straight rerun
	if err != nil {
		t.Fatal(err)
	}
	for _, s2 := range []*Sweep{b, c} {
		for _, wf := range a.Workflows() {
			for _, name := range a.Strategies {
				ra := a.MustGet(wf, workload.Pareto, name)
				rb := s2.MustGet(wf, workload.Pareto, name)
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("%s/%s differs between runs:\na %+v\nb %+v", wf, name, ra, rb)
				}
			}
		}
	}
}

func TestZeroRateFaultsLeaveGridUntouched(t *testing.T) {
	// Acceptance: with fault rate 0 every strategy reproduces its
	// fault-free makespan/cost exactly.
	clean, err := Run(Config{Seed: 42, Scenarios: []workload.Scenario{workload.Pareto}})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(Config{Seed: 42, Scenarios: []workload.Scenario{workload.Pareto},
		Faults: &fault.Config{Recovery: fault.Retry, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range clean.Workflows() {
		for _, name := range clean.Strategies {
			rc := clean.MustGet(wf, workload.Pareto, name)
			rz := zero.MustGet(wf, workload.Pareto, name)
			if rc.Point != rz.Point || rc.Category != rz.Category {
				t.Errorf("%s/%s: zero-rate faults changed the point:\nclean %+v\nzero  %+v",
					wf, name, rc.Point, rz.Point)
			}
			if rz.Reliability == nil {
				continue // inactive fault model records nothing
			}
		}
	}
}

func TestFaultSweepParanoidCrossChecks(t *testing.T) {
	// Paranoid + faults runs the fault-mode oracle on every cell: each
	// replay's counters must agree with an accounting re-derived from its
	// own event stream, even when no Recorder is attached.
	s, err := Run(Config{Seed: 2, Paranoid: true,
		Scenarios: []workload.Scenario{workload.Pareto}, Faults: faultCfg(13)})
	if err != nil {
		t.Fatalf("paranoid faulty sweep diverged: %v", err)
	}
	for _, wf := range s.Workflows() {
		for _, name := range s.Strategies {
			if s.MustGet(wf, workload.Pareto, name).Reliability == nil {
				t.Fatalf("%s/%s: no reliability metrics", wf, name)
			}
		}
	}
}

func TestFaultSweepRejectsInvalidConfig(t *testing.T) {
	_, err := Run(Config{Scenarios: []workload.Scenario{workload.Pareto},
		Faults: &fault.Config{CrashRate: -1}})
	if err == nil {
		t.Error("negative crash rate accepted by the sweep")
	}
}

// TestFaultSweepParallelStress drives a parallel faulty sweep for the
// -race detector: reliability replays must not share mutable state across
// workers.
func TestFaultSweepParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := Config{Seed: 5, Faults: faultCfg(21), Workers: 8}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
