package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// The golden values below are the seed-42 measurements recorded in
// EXPERIMENTS.md. The sweep is deterministic, so any drift here means the
// model changed and the documentation needs regenerating — this test is
// the tripwire.
func TestGoldenSeed42Values(t *testing.T) {
	s := sweep(t) // seed 42, paranoid
	golden := []struct {
		wf, strat  string
		sc         workload.Scenario
		gain, loss float64
	}{
		{"Montage", "AllParExceed-s", workload.Pareto, 0.9, -45.8},
		{"Montage", "AllParExceed-m", workload.Pareto, 37.7, -41.7},
		{"Montage", "OneVMperTask-l", workload.Pareto, 53.0, 300.0},
		{"Montage", "AllPar1LnS", workload.Pareto, -3.9, -54.2},
		{"CSTEM", "AllParExceed-m", workload.Pareto, 38.4, -6.7},
		{"CSTEM", "StartParExceed-l", workload.Pareto, 18.0, -46.7},
		{"MapReduce", "AllPar1LnSDyn", workload.Pareto, 15.1, -45.5},
		{"MapReduce", "StartParExceed-s", workload.Pareto, -187.0, -77.3},
		{"Sequential", "AllParExceed-s", workload.Pareto, 0.8, -70.0},
		{"Sequential", "StartParNotExceed-l", workload.Pareto, 52.7, -20.0},
		{"Montage", "AllParExceed-m", workload.BestCase, 37.5, -50.0},
		{"MapReduce", "AllParExceed-l", workload.BestCase, 52.4, 45.5},
	}
	for _, g := range golden {
		r := s.MustGet(g.wf, g.sc, g.strat)
		if math.Abs(r.Point.GainPct-g.gain) > 0.1 || math.Abs(r.Point.LossPct-g.loss) > 0.1 {
			t.Errorf("%s/%v/%s: (%.1f, %.1f), EXPERIMENTS.md records (%.1f, %.1f) — regenerate the docs",
				g.wf, g.sc, g.strat, r.Point.GainPct, r.Point.LossPct, g.gain, g.loss)
		}
	}
}

// Idle-time goldens from the Fig. 5 table in EXPERIMENTS.md (hours).
func TestGoldenIdleHours(t *testing.T) {
	s := sweep(t)
	golden := []struct {
		wf, strat string
		hours     float64
	}{
		{"Montage", "OneVMperTask-s", 18.7},
		{"Montage", "GAIN", 21.5},
		{"CSTEM", "StartParExceed-s", 0.9},
		{"MapReduce", "StartParExceed-s", 0.2},
		{"Sequential", "OneVMperTask-l", 9.0},
	}
	for _, g := range golden {
		r := s.MustGet(g.wf, workload.Pareto, g.strat)
		if math.Abs(r.Point.IdleTime/3600-g.hours) > 0.1 {
			t.Errorf("%s/%s: idle %.1f h, EXPERIMENTS.md records %.1f h",
				g.wf, g.strat, r.Point.IdleTime/3600, g.hours)
		}
	}
}
