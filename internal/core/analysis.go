package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Table3Row is one workflow/scenario row of the paper's Table III: the
// strategies that land in the target square, bucketed by their
// gain/savings balance. Strategies with identical outcomes are grouped
// into one equivalence group, mirroring the paper's "A = B" notation.
type Table3Row struct {
	Workflow string
	Scenario workload.Scenario
	// Groups maps each category to its strategy groups; strategies within
	// one inner slice produced identical (gain, loss) results.
	Groups map[metrics.Category][][]string
}

// Table3 classifies the sweep following Table III. Only strategies inside
// the target square (non-negative gain and savings) appear.
func (s *Sweep) Table3() []Table3Row {
	var rows []Table3Row
	for _, sc := range s.Scenarios() {
		for _, wf := range s.Workflows() {
			row := Table3Row{Workflow: wf, Scenario: sc,
				Groups: map[metrics.Category][][]string{}}
			byOutcome := map[[2]float64][]string{}
			var order [][2]float64
			for _, r := range s.Points(wf, sc) {
				if r.Category == metrics.OutOfSquare {
					continue
				}
				key := [2]float64{round1(r.Point.GainPct), round1(r.Point.LossPct)}
				if _, seen := byOutcome[key]; !seen {
					order = append(order, key)
				}
				byOutcome[key] = append(byOutcome[key], r.Strategy)
			}
			for _, key := range order {
				group := byOutcome[key]
				cat := metrics.Classify(metrics.Point{GainPct: key[0], LossPct: key[1]})
				row.Groups[cat] = append(row.Groups[cat], group)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// round1 rounds to one decimal so that float noise does not split
// equivalence groups.
func round1(x float64) float64 { return math.Round(x*10) / 10 }

// FormatGroups renders equivalence groups in the paper's style:
// "A = B, C".
func FormatGroups(groups [][]string) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = strings.Join(g, " = ")
	}
	return strings.Join(parts, ", ")
}

// Table4Row is one instance-type row of the paper's Table IV: the loss
// interval the AllPar[Not]Exceed pair spans per workflow (across all
// scenarios), their overall maximum interval, and their mean gain.
type Table4Row struct {
	Type           cloud.InstanceType
	LossByWorkflow map[string]metrics.Interval
	MaxLoss        metrics.Interval
	MeanGainPct    float64
}

// Table4 aggregates the AllPar[Not]Exceed strategies per instance type
// over every workflow and scenario, reproducing Table IV's structure: the
// savings fluctuate per workflow while the gain stays pinned to the
// instance speed-up.
func (s *Sweep) Table4() []Table4Row {
	var rows []Table4Row
	for _, typ := range []cloud.InstanceType{cloud.Small, cloud.Medium, cloud.Large} {
		strategies := []string{
			"AllParExceed-" + typ.Suffix(),
			"AllParNotExceed-" + typ.Suffix(),
		}
		row := Table4Row{Type: typ, LossByWorkflow: map[string]metrics.Interval{}}
		var all []metrics.Point
		for _, wf := range s.Workflows() {
			var pts []metrics.Point
			for _, sc := range s.Scenarios() {
				for _, strat := range strategies {
					if r, ok := s.Get(wf, sc, strat); ok {
						pts = append(pts, r.Point)
					}
				}
			}
			if len(pts) == 0 {
				continue
			}
			row.LossByWorkflow[wf] = metrics.LossInterval(pts)
			all = append(all, pts...)
		}
		if len(all) == 0 {
			continue
		}
		row.MaxLoss = metrics.LossInterval(all)
		row.MeanGainPct = metrics.MeanGain(all)
		rows = append(rows, row)
	}
	return rows
}

// Goal is a user objective for strategy selection (the axes of Table V).
type Goal int

// The three objectives of Table V.
const (
	Savings Goal = iota
	GainGoal
	Balance
)

// Goals lists all objectives.
func Goals() []Goal { return []Goal{Savings, GainGoal, Balance} }

// String names the goal as in Table V's column headers.
func (g Goal) String() string {
	switch g {
	case Savings:
		return "Savings"
	case GainGoal:
		return "Gain"
	case Balance:
		return "Balance"
	}
	return fmt.Sprintf("Goal(%d)", int(g))
}

// Recommendation is one cell of the paper's Table V: the strategy to pick
// for a workflow class and user goal, with its supporting numbers.
type Recommendation struct {
	Workflow string
	Goal     Goal
	Strategy string
	Point    metrics.Point
}

// Recommend picks the best strategy for a workflow under a goal,
// aggregating each strategy's points across the sweep's scenarios:
//
//   - Savings: the highest mean savings among strategies that never lose
//     money in any scenario;
//   - Gain: the highest mean gain among strategies whose mean savings stay
//     non-negative (a bad scenario may lose as long as the average does
//     not); if no strategy qualifies, the constraint falls back to all
//     strategies (the paper notes pure gain often requires paying);
//   - Balance: the largest mean min(gain, savings) among strategies with
//     non-negative mean gain and savings.
//
// This is the paper's "adaptive scheduling" conclusion turned into an API:
// given workflow properties and a goal, select the SA + provisioning
// combination.
func (s *Sweep) Recommend(wf string, goal Goal) (Recommendation, error) {
	type agg struct {
		name                 string
		meanGain, meanSaving float64
		minGain, minSaving   float64
		n                    int
	}
	var aggs []agg
	for _, name := range s.Strategies {
		a := agg{name: name, minGain: math.Inf(1), minSaving: math.Inf(1)}
		for _, sc := range s.Scenarios() {
			r, ok := s.Get(wf, sc, name)
			if !ok {
				continue
			}
			a.meanGain += r.Point.GainPct
			a.meanSaving += r.Point.SavingsPct()
			a.minGain = math.Min(a.minGain, r.Point.GainPct)
			a.minSaving = math.Min(a.minSaving, r.Point.SavingsPct())
			a.n++
		}
		if a.n > 0 {
			a.meanGain /= float64(a.n)
			a.meanSaving /= float64(a.n)
			aggs = append(aggs, a)
		}
	}
	if len(aggs) == 0 {
		return Recommendation{}, fmt.Errorf("core: no results for workflow %q", wf)
	}

	score := func(a agg) (float64, bool) {
		const eps = -1e-9
		switch goal {
		case Savings:
			return a.meanSaving, a.minSaving >= eps
		case GainGoal:
			return a.meanGain, a.meanSaving >= eps
		case Balance:
			return math.Min(a.meanGain, a.meanSaving), a.meanGain >= eps && a.meanSaving >= eps
		}
		panic(fmt.Sprintf("core: invalid goal %d", int(goal)))
	}

	pick := func(requireEligible bool) (agg, bool) {
		best, found := agg{}, false
		bestScore := math.Inf(-1)
		for _, a := range aggs {
			sc, eligible := score(a)
			if requireEligible && !eligible {
				continue
			}
			if !found || sc > bestScore || (sc == bestScore && a.name < best.name) {
				best, bestScore, found = a, sc, true
			}
		}
		return best, found
	}

	best, found := pick(true)
	if !found {
		best, _ = pick(false)
	}
	// Report the Pareto-scenario point as the representative outcome.
	rep, ok := s.Get(wf, workload.Pareto, best.name)
	if !ok {
		rep = s.MustGet(wf, s.Scenarios()[0], best.name)
	}
	return Recommendation{Workflow: wf, Goal: goal, Strategy: best.name, Point: rep.Point}, nil
}

// Table5 assembles the recommendation summary for every workflow and goal.
func (s *Sweep) Table5() ([]Recommendation, error) {
	var out []Recommendation
	for _, wf := range s.Workflows() {
		for _, g := range Goals() {
			rec, err := s.Recommend(wf, g)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// IdleRanking returns the strategies of one workflow/scenario pane sorted
// by decreasing idle time — the ordering the paper discusses around Fig. 5
// (OneVMperTask*, Gain and CPA-Eager produce the largest idle).
func (s *Sweep) IdleRanking(wf string, sc workload.Scenario) []Result {
	out := s.Points(wf, sc)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Point.IdleTime > out[j].Point.IdleTime
	})
	return out
}
