package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// The paper evaluates a single Pareto draw per workflow. MultiSeed
// re-runs the sweep across many seeds and summarizes each strategy's gain
// and loss distributions, quantifying how robust the Table III
// classification is to the workload draw — a prerequisite for trusting the
// adaptive-scheduling recommendations.

// Stability summarizes one strategy's behaviour on one workflow across
// seeds (Pareto scenario only; the other scenarios are deterministic).
type Stability struct {
	Workflow string
	Strategy string
	Gain     stats.Summary // gain% across seeds
	Loss     stats.Summary // loss% across seeds
	// GainCI and LossCI are 95% percentile-bootstrap confidence intervals
	// for the mean gain and loss.
	GainCI stats.CI
	LossCI stats.CI
	// InSquareFraction is the fraction of seeds where the strategy landed
	// in the target square (gain >= 0 and loss <= 0).
	InSquareFraction float64
}

// MultiSeed runs the Pareto sweep for seeds seed0..seed0+n-1 and returns
// per-(workflow, strategy) stability summaries, ordered by workflow then
// catalog position.
func MultiSeed(cfg Config, seed0 uint64, n int) ([]Stability, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive seed count %d", n)
	}
	cfg = cfg.Fill()
	cfg.Scenarios = []workload.Scenario{workload.Pareto}

	type acc struct {
		gains, losses []float64
		inSquare      int
	}
	accs := map[Key]*acc{}
	var strategies []string
	for i := 0; i < n; i++ {
		cfg.Seed = seed0 + uint64(i)
		s, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		if strategies == nil {
			strategies = s.Strategies
		}
		for _, wf := range s.Workflows() {
			for _, r := range s.Points(wf, workload.Pareto) {
				key := Key{Workflow: wf, Strategy: r.Strategy}
				a := accs[key]
				if a == nil {
					a = &acc{}
					accs[key] = a
				}
				a.gains = append(a.gains, r.Point.GainPct)
				a.losses = append(a.losses, r.Point.LossPct)
				if r.Point.InTargetSquare() {
					a.inSquare++
				}
			}
		}
	}

	var out []Stability
	for _, wf := range cfg.WorkflowOrder {
		for _, strat := range strategies {
			a := accs[Key{Workflow: wf, Strategy: strat}]
			if a == nil {
				continue
			}
			out = append(out, Stability{
				Workflow:         wf,
				Strategy:         strat,
				Gain:             stats.Summarize(a.gains),
				Loss:             stats.Summarize(a.losses),
				GainCI:           stats.BootstrapMeanCI(a.gains, 0.95, 1000, seed0),
				LossCI:           stats.BootstrapMeanCI(a.losses, 0.95, 1000, seed0),
				InSquareFraction: float64(a.inSquare) / float64(n),
			})
		}
	}
	return out, nil
}

// StableWinners filters the stability results down to strategies that land
// in the target square in at least frac of the seeds, per workflow.
func StableWinners(rows []Stability, frac float64) map[string][]Stability {
	out := map[string][]Stability{}
	for _, r := range rows {
		if r.InSquareFraction >= frac {
			out[r.Workflow] = append(out[r.Workflow], r)
		}
	}
	return out
}
