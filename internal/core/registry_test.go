package core

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workflows"
)

func TestStrategyByName(t *testing.T) {
	for _, name := range StrategyNames() {
		alg, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("StrategyByName(%q) resolved %q", name, alg.Name())
		}
	}
	if want := len(sched.Catalog()) + len(sched.Hedges()); len(StrategyNames()) != want {
		t.Fatalf("StrategyNames() has %d entries, catalog+hedges %d",
			len(StrategyNames()), want)
	}
	// The catalog keeps its figure order at the front; the hedges append.
	for i, a := range sched.Catalog() {
		if StrategyNames()[i] != a.Name() {
			t.Fatalf("StrategyNames()[%d] = %q, catalog says %q", i, StrategyNames()[i], a.Name())
		}
	}
}

func TestStrategyByNameCaseInsensitive(t *testing.T) {
	alg, err := StrategyByName("allparexceed-m")
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "AllParExceed-m" {
		t.Fatalf("resolved %q", alg.Name())
	}
	if _, err := StrategyByName("NoSuchStrategy"); err == nil {
		t.Fatal("unknown strategy did not error")
	} else if !strings.Contains(err.Error(), "AllParExceed-m") {
		t.Fatalf("error does not list valid names: %v", err)
	}
}

func TestNamedWorkflowDisplayNames(t *testing.T) {
	for _, name := range WorkflowNames() {
		wf, err := NamedWorkflow(name)
		if err != nil {
			t.Fatalf("NamedWorkflow(%q): %v", name, err)
		}
		if wf.Len() == 0 {
			t.Fatalf("NamedWorkflow(%q): empty workflow", name)
		}
	}
	// Case-insensitive display-name lookup.
	wf, err := NamedWorkflow("montage")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wf.Len(), workflows.PaperMontage().Len(); got != want {
		t.Fatalf("montage has %d tasks, want paper's %d", got, want)
	}
}

func TestNamedWorkflowGenerators(t *testing.T) {
	cases := []struct {
		name  string
		tasks int
	}{
		{"montage24", workflows.Montage(24).Len()},
		{"Montage24", workflows.Montage(24).Len()},
		{"mapreduce16x8", workflows.MapReduce(16, 8).Len()},
		{"mapreduce16", workflows.MapReduce(16, 4).Len()},
		{"sequential20", workflows.Sequential(20).Len()},
		{"layered3x4", workflows.Layered(3, 4).Len()},
		{"epigenomics6", workflows.Epigenomics(6).Len()},
		{"inspiral2x5", workflows.Inspiral(2, 5).Len()},
		{"cybershake12", workflows.CyberShake(12).Len()},
		{"cstem", workflows.CSTEM().Len()},
		{"fig1", workflows.Fig1SubWorkflow().Len()},
	}
	for _, c := range cases {
		wf, err := NamedWorkflow(c.name)
		if err != nil {
			t.Fatalf("NamedWorkflow(%q): %v", c.name, err)
		}
		if wf.Len() != c.tasks {
			t.Fatalf("NamedWorkflow(%q): %d tasks, want %d", c.name, wf.Len(), c.tasks)
		}
	}
}

func TestNamedWorkflowErrors(t *testing.T) {
	for _, name := range []string{"", "nosuch", "montage0", "cstem7", "mapreduce1x2x3", "sequential-4"} {
		if _, err := NamedWorkflow(name); err == nil {
			t.Fatalf("NamedWorkflow(%q) did not error", name)
		}
	}
}
