package core

import (
	"testing"
)

func TestMultiSeedShapes(t *testing.T) {
	rows, err := MultiSeed(Config{}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 4 workflows x 19 strategies.
	if len(rows) != 4*19 {
		t.Fatalf("rows = %d, want 76", len(rows))
	}
	for _, r := range rows {
		if r.Gain.N != 5 || r.Loss.N != 5 {
			t.Fatalf("%s/%s: %d samples, want 5", r.Workflow, r.Strategy, r.Gain.N)
		}
		if r.InSquareFraction < 0 || r.InSquareFraction > 1 {
			t.Errorf("%s/%s: fraction %v", r.Workflow, r.Strategy, r.InSquareFraction)
		}
	}
}

func TestMultiSeedBaselineAlwaysAtOrigin(t *testing.T) {
	rows, err := MultiSeed(Config{}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Strategy != "OneVMperTask-s" {
			continue
		}
		if r.Gain.Min != 0 || r.Gain.Max != 0 || r.Loss.Min != 0 || r.Loss.Max != 0 {
			t.Errorf("%s: baseline moved: gain [%v, %v], loss [%v, %v]",
				r.Workflow, r.Gain.Min, r.Gain.Max, r.Loss.Min, r.Loss.Max)
		}
		if r.InSquareFraction != 1 {
			t.Errorf("%s: baseline in-square fraction %v", r.Workflow, r.InSquareFraction)
		}
	}
}

// The robustness claim behind Table V: the AllPar small/medium strategies
// stay in (or at the edge of) the target square across draws, while
// OneVMperTask-m/l never enter it.
func TestMultiSeedStableClassification(t *testing.T) {
	rows, err := MultiSeed(Config{}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Strategy {
		case "AllParExceed-s":
			// Gains hover at 0 (speed-up 1) and the strategy saves money
			// on average — occasional draws may lose a little when BTU
			// tails stack up, but the mean stays on the savings side.
			if r.Loss.Mean > 1e-9 {
				t.Errorf("%s/%s: mean loss %v > 0", r.Workflow, r.Strategy, r.Loss.Mean)
			}
		case "OneVMperTask-m", "OneVMperTask-l":
			if r.InSquareFraction > 0 {
				t.Errorf("%s/%s: entered the target square (fraction %v)",
					r.Workflow, r.Strategy, r.InSquareFraction)
			}
		case "AllPar1LnSDyn":
			if r.Loss.Mean > 1e-9 {
				t.Errorf("%s/%s: mean loss %v > 0", r.Workflow, r.Strategy, r.Loss.Mean)
			}
		}
	}
	// The AllPar medium gain is stable across draws: std below 2 points.
	for _, r := range rows {
		if r.Strategy == "AllParExceed-m" && r.Gain.Std > 2 {
			t.Errorf("%s: AllParExceed-m gain std %v, want < 2 (Table IV stability)",
				r.Workflow, r.Gain.Std)
		}
	}
}

func TestStableWinners(t *testing.T) {
	rows, err := MultiSeed(Config{}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	winners := StableWinners(rows, 1.0)
	for wf, list := range winners {
		if len(list) == 0 {
			t.Errorf("%s: empty winner list", wf)
		}
		for _, r := range list {
			if r.InSquareFraction < 1 {
				t.Errorf("%s/%s: fraction %v below threshold", wf, r.Strategy, r.InSquareFraction)
			}
		}
	}
	// The baseline (always at the square's corner) is a winner everywhere.
	for _, wf := range []string{"Montage", "CSTEM", "MapReduce", "Sequential"} {
		found := false
		for _, r := range winners[wf] {
			if r.Strategy == "OneVMperTask-s" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: baseline missing from stable winners", wf)
		}
	}
}

func TestMultiSeedRejectsBadCount(t *testing.T) {
	if _, err := MultiSeed(Config{}, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMultiSeedConfidenceIntervals(t *testing.T) {
	rows, err := MultiSeed(Config{}, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.GainCI.Contains(r.Gain.Mean) {
			t.Errorf("%s/%s: gain CI %v misses mean %v", r.Workflow, r.Strategy, r.GainCI, r.Gain.Mean)
		}
		if !r.LossCI.Contains(r.Loss.Mean) {
			t.Errorf("%s/%s: loss CI %v misses mean %v", r.Workflow, r.Strategy, r.LossCI, r.Loss.Mean)
		}
		if r.GainCI.Lo > r.GainCI.Hi || r.LossCI.Lo > r.LossCI.Hi {
			t.Errorf("%s/%s: inverted CI", r.Workflow, r.Strategy)
		}
	}
}
