package online

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/ndwf"
	"repro/internal/stats"
)

// MixEntry is one component of a workflow mix: a non-deterministic
// template and its relative arrival weight.
type MixEntry struct {
	Template ndwf.Template
	Weight   float64
}

// mixSeed derives the per-instance draw stream for the mix: a splitmix64
// hash of (seed, instance), so instance i's template choice and sample
// are independent of every other instance's — the same order-independence
// discipline as fault.CellSeed and market.ColdStart.Draw.
func mixSeed(seed, i uint64) uint64 {
	x := seed ^ 0x9E3779B97F4A7C15*(i+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// validateMix rejects impossible mixes.
func validateMix(entries []MixEntry) error {
	for i, e := range entries {
		if e.Weight <= 0 {
			return fmt.Errorf("online: mix entry %d (%s) has non-positive weight %v",
				i, e.Template.Name, e.Weight)
		}
		if err := e.Template.Validate(); err != nil {
			return fmt.Errorf("online: mix entry %d: %w", i, err)
		}
	}
	return nil
}

// mixBuilder turns a validated mix into an instance builder: instance i
// picks a template by weight and samples it, both from i's own hash
// stream (the shared arrival RNG is deliberately unused, so a mix run's
// arrival times match a fixed-builder run's under the same seed).
func mixBuilder(entries []MixEntry, seed uint64) func(int, *stats.RNG) *dag.Workflow {
	total := 0.0
	for _, e := range entries {
		total += e.Weight
	}
	return func(i int, _ *stats.RNG) *dag.Workflow {
		r := stats.NewRNG(mixSeed(seed, uint64(i)))
		u := r.Float64() * total
		pick := entries[len(entries)-1].Template
		for _, e := range entries {
			if u < e.Weight {
				pick = e.Template
				break
			}
			u -= e.Weight
		}
		wf, err := pick.Sample(r.Uint64())
		if err != nil {
			panic(fmt.Sprintf("online: sampling mix template %q: %v", pick.Name, err))
		}
		return wf
	}
}
