package online

import (
	"fmt"
	"math"
	"strings"
)

// PoolState is the instantaneous pool view a Scaler decides from. All
// quantities are exact simulation state except ArrivalRate and
// InstanceWork, which are exponentially weighted moving averages updated
// at each instance arrival — the only "estimates" an online controller
// would actually have.
type PoolState struct {
	// Now is the simulated time of the decision.
	Now float64
	// Live is the rented pool size (booting VMs included); Idle the live
	// VMs without an assigned task.
	Live, Idle int
	// QueueDepth is the number of ready tasks awaiting a VM; QueuedWork
	// their summed execution time on the pool's instance type, in seconds.
	QueueDepth int
	QueuedWork float64
	// ArrivalRate is the EWMA instance arrival rate, in instances per
	// second; InstanceWork the EWMA per-instance total execution time.
	ArrivalRate  float64
	InstanceWork float64
	// Deadline is Config.Deadline (0 when unset).
	Deadline float64
	// MinVMs and MaxVMs are the configured pool bounds.
	MinVMs, MaxVMs int
}

// Scaler is an auto-scaling policy: given the pool state at a dispatch
// point it returns the desired pool size. The harness only ever scales
// *up* toward the desired size (clamped to MaxVMs, floored at one VM
// while work is queued); scale-down is not a Scaler decision — idle VMs
// are released at their billing-unit boundaries (see the package
// comment), because a paid unit is sunk either way.
type Scaler interface {
	// Name identifies the policy in catalogs, metrics and reports.
	Name() string
	// Desired returns the target pool size for the given state.
	Desired(s PoolState) int
}

// Reactive is the queue-threshold policy (the package's original
// behaviour and the default): one VM per ready task beyond the currently
// idle capacity.
type Reactive struct{}

// Name implements Scaler.
func (Reactive) Name() string { return "reactive" }

// Desired implements Scaler.
func (Reactive) Desired(s PoolState) int {
	return s.Live + s.QueueDepth - s.Idle
}

// Deadline is a Mao & Humphrey-style deadline-driven policy: keep the
// busy VMs and add enough capacity to clear the queued work within one
// deadline, so instances admitted now can still meet theirs. Without a
// configured deadline it degenerates to Reactive.
type Deadline struct{}

// Name implements Scaler.
func (Deadline) Name() string { return "deadline" }

// Desired implements Scaler.
func (Deadline) Desired(s PoolState) int {
	if s.Deadline <= 0 {
		return Reactive{}.Desired(s)
	}
	busy := s.Live - s.Idle
	return busy + int(math.Ceil(s.QueuedWork/s.Deadline))
}

// Predictive sizes the pool from the EWMA arrival rate instead of the
// current queue: by Little's law a stream of rate λ instances/s, each
// carrying w execution-seconds, keeps λ·w VMs busy in steady state. The
// headroom factor over-provisions for burstiness; queue pressure is left
// to the harness's one-VM floor, so the policy's failure mode under
// misprediction is a long queue, not a stall.
type Predictive struct {
	// Headroom scales the steady-state demand; 0 selects 1.25.
	Headroom float64
}

// Name implements Scaler.
func (Predictive) Name() string { return "predictive" }

// Desired implements Scaler.
func (p Predictive) Desired(s PoolState) int {
	h := p.Headroom
	if h <= 0 {
		h = 1.25
	}
	return int(math.Ceil(h * s.ArrivalRate * s.InstanceWork))
}

// Scalers returns the built-in policies keyed by catalog name.
func Scalers() map[string]Scaler {
	return map[string]Scaler{
		"reactive":   Reactive{},
		"deadline":   Deadline{},
		"predictive": Predictive{},
	}
}

// ScalerNames lists the built-in policies alphabetically.
func ScalerNames() []string { return []string{"deadline", "predictive", "reactive"} }

// ParseScaler resolves a policy by its catalog name, case-insensitively.
func ParseScaler(name string) (Scaler, error) {
	if s, ok := Scalers()[strings.ToLower(name)]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("online: unknown scaler %q (valid: %s)",
		name, strings.Join(ScalerNames(), ", "))
}
