package online

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/ndwf"
)

func TestSummaryRendersAllSections(t *testing.T) {
	tpl, err := ndwf.Named("order")
	if err != nil {
		t.Fatal(err)
	}
	m, err := market.Preset("spot")
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fault.Config{SpotPreemptRate: 2, Seed: 11}
	cfg := Config{
		MeanInterarrival: 300,
		Instances:        30,
		Mix:              []MixEntry{{Template: tpl, Weight: 1}},
		MaxVMs:           16,
		Scaler:           Reactive{},
		Deadline:         9000,
		Market:           m,
		Faults:           &fcfg,
		Seed:             7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Summary(&cfg, res)
	for _, want := range []string{
		"online: 30 instances, mean interarrival 300s",
		"scaler reactive, dispatch fifo",
		"response  p50",
		"SLA ",
		"within 9000s",
		"pool      peak",
		"cost      $",
		"preemptions",
		"of boot across rentals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Without a deadline, faults, or a market the optional lines vanish.
	plain := Config{
		MeanInterarrival: 300,
		Instances:        10,
		Mix:              []MixEntry{{Template: tpl, Weight: 1}},
		MaxVMs:           16,
		Scaler:           Reactive{},
		Seed:             7,
	}
	pres, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	pout := Summary(&plain, pres)
	for _, absent := range []string{"SLA", "faults", "cold"} {
		if strings.Contains(pout, absent) {
			t.Errorf("plain summary should not contain %q:\n%s", absent, pout)
		}
	}
	if !strings.Contains(pout, "market{none}") {
		t.Errorf("plain summary should name the nil market:\n%s", pout)
	}
}

func TestUtilizationOfIdleRun(t *testing.T) {
	var r Result
	if got := r.Utilization(); got != 0 {
		t.Errorf("zero-paid utilization = %v", got)
	}
}

func TestDispatchStringAndParse(t *testing.T) {
	if FIFO.String() != "fifo" || SJF.String() != "sjf" {
		t.Errorf("dispatch names: %q, %q", FIFO, SJF)
	}
	if got := Dispatch(7).String(); got != "Dispatch(7)" {
		t.Errorf("unknown dispatch String = %q", got)
	}
	d, err := ParseDispatch("SJF")
	if err != nil || d != SJF {
		t.Errorf("ParseDispatch(SJF) = %v, %v", d, err)
	}
	if _, err := ParseDispatch("sj"); err == nil {
		t.Error("ParseDispatch(sj) succeeded")
	}
	if _, err := ParseDispatch("lifo"); err == nil {
		t.Error("ParseDispatch(lifo) succeeded")
	}
}

func TestDeadlineScalerFallsBackToReactive(t *testing.T) {
	s := PoolState{Live: 4, Idle: 1, QueueDepth: 5}
	if got, want := (Deadline{}).Desired(s), (Reactive{}).Desired(s); got != want {
		t.Errorf("no-deadline Deadline.Desired = %d, reactive gives %d", got, want)
	}
}
