package online

import "repro/internal/dag"

// readyTask is a dispatchable task of some arrived instance.
type readyTask struct {
	inst    int
	task    dag.TaskID
	readyAt float64
	seq     int // FIFO tie-break; unique across the run
	work    float64
	id      int32 // stable telemetry identity, kept across requeues
	attempt int32 // 1-based; bumped when a crash/preemption requeues the task
}

// taskHeap is the ready queue: a binary min-heap keyed by the dispatch
// policy's order. It replaces the old sort-the-whole-slice-per-event
// queue (O(n log n) per completion) with O(log n) push/pop, and — unlike
// the old `queue = queue[k:]` re-slicing — it never strands the consumed
// head of its backing array: popped slots are zeroed and the array is
// reallocated downward once a drained burst leaves it mostly empty.
type taskHeap struct {
	items []readyTask
	less  func(a, b *readyTask) bool
}

// heapShrinkMin is the smallest capacity worth reclaiming; below it the
// backing array is noise.
const heapShrinkMin = 1024

func (h *taskHeap) Len() int { return len(h.items) }

// Push adds a task.
func (h *taskHeap) Push(t readyTask) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(&h.items[i], &h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the least task under the policy order.
func (h *taskHeap) Pop() readyTask {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = readyTask{} // release, don't strand
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(&h.items[l], &h.items[least]) {
			least = l
		}
		if r < n && h.less(&h.items[r], &h.items[least]) {
			least = r
		}
		if least == i {
			break
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
	// A drained burst must give its memory back: once the live prefix is
	// a quarter of a large backing array, move it to a right-sized one.
	if c := cap(h.items); c >= heapShrinkMin && n <= c/4 {
		shrunk := make([]readyTask, n, 2*n)
		copy(shrunk, h.items)
		h.items = shrunk
	}
	return top
}

// fifoLess orders by readiness time, then arrival sequence.
func fifoLess(a, b *readyTask) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.seq < b.seq
}

// sjfLess orders by task size, then arrival sequence.
func sjfLess(a, b *readyTask) bool {
	if a.work != b.work {
		return a.work < b.work
	}
	return a.seq < b.seq
}
