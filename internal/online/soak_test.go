package online

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/market"
	"repro/internal/ndwf"
)

// soakInstances is the headline soak size: large enough that the old
// quadratic pool scans and per-completion queue sorts would blow any CI
// budget, small enough to finish in seconds with the heap + live-set
// implementation.
const soakInstances = 100_000

func soakConfig(t testing.TB) Config {
	t.Helper()
	order, err := ndwf.Named("order")
	if err != nil {
		t.Fatal(err)
	}
	montage, err := ndwf.Named("montage2")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		MeanInterarrival: 20,
		Instances:        soakInstances,
		Mix: []MixEntry{
			{Template: order, Weight: 3},
			{Template: montage, Weight: 1},
		},
		Type:   cloud.Small,
		Region: cloud.USEastVirginia,
		MaxVMs: 256,
		Market: &market.Model{
			Gran: market.PerSecond,
			Cold: market.ColdStart{Dist: "fixed", Mean: 45},
			Seed: 1,
		},
		Deadline: 7200,
		Seed:     42,
	}
}

// TestSoakDeterministicAndBounded is the acceptance soak: 100k instances
// from a heavy-tail mix, cold starts and per-second market billing
// active, run twice — bit-identical results, sub-quadratic wall time and
// bounded heap after the run (the drained queue and collected instances
// must give their memory back).
func TestSoakDeterministicAndBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	cfg := soakConfig(t)
	if raceEnabled {
		// Same seed and mix, a tenth of the stream: a race smoke, not a
		// complexity benchmark.
		cfg.Instances = soakInstances / 10
	}
	start := time.Now()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if a.ResponseTimes.N != cfg.Instances {
		t.Fatalf("completed %d of %d instances", a.ResponseTimes.N, cfg.Instances)
	}
	// Event count must stay linear in the task count: with ~10 tasks per
	// mean instance, 100 events per instance is an order of magnitude of
	// slack over arrivals + task completions + kill/billing events.
	if a.Events > cfg.Instances*100 {
		t.Errorf("event count %d is super-linear (%d instances)", a.Events, cfg.Instances)
	}
	// Generous wall bound: the old O(n^2) pool scan took minutes at this
	// size; the rewrite takes seconds. A factor-10 margin over observed
	// time keeps slow CI machines green while still catching a
	// complexity regression.
	if elapsed > 2*time.Minute {
		t.Errorf("soak took %v, want well under 2m", elapsed)
	}
	if a.ColdStartWaitS <= 0 || a.TotalCost <= 0 {
		t.Errorf("market inactive in soak: cold wait %v, cost %v", a.ColdStartWaitS, a.TotalCost)
	}

	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("soak is not deterministic:\nfirst:  %v\nsecond: %v", a.ResponseTimes, b.ResponseTimes)
	}

	// The drained run must not pin its transient state: after collection
	// the live heap should be far below the working set a leaky queue
	// (the old `queue = queue[k:]` re-slicing) would strand.
	a, b = nil, nil
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("post-soak HeapAlloc = %d MiB, want bounded", ms.HeapAlloc>>20)
	}
}

// TestSteadyStateAllocs guards the dispatch path's allocation rate: the
// per-instance cost must stay flat (no per-event sorting buffers, no
// retained queue heads).
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	cfg := soakConfig(t)
	cfg.Instances = 2000
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	perInstance := allocs / float64(cfg.Instances)
	// The rate is flat at ~86 allocs/instance (mix sampling + per-task
	// event closures) from 1k through 16k instances; 130 gives ~50%
	// headroom while still catching anything super-linear or a
	// per-event buffer creeping into the dispatch loop.
	if perInstance > 130 {
		t.Errorf("%.1f allocations per instance, want steady-state rate under 130", perInstance)
	}
}

// TestTaskHeapReleasesDrainedMemory is the direct regression test for the
// queue leak: push a large burst, drain it, and require the backing array
// to have been re-sized down — the old re-slicing kept the full burst
// reachable forever.
func TestTaskHeapReleasesDrainedMemory(t *testing.T) {
	h := taskHeap{less: fifoLess}
	const burst = 200_000
	for i := 0; i < burst; i++ {
		h.Push(readyTask{readyAt: float64(i % 97), seq: i, work: float64(i % 13)})
	}
	if cap(h.items) < burst {
		t.Fatalf("cap %d after %d pushes", cap(h.items), burst)
	}
	prev := readyTask{readyAt: -1}
	for h.Len() > 0 {
		rt := h.Pop()
		if rt.readyAt < prev.readyAt || (rt.readyAt == prev.readyAt && rt.seq < prev.seq) {
			t.Fatalf("heap order violated: %+v after %+v", rt, prev)
		}
		prev = rt
	}
	if cap(h.items) >= burst/4 {
		t.Errorf("drained heap still holds cap %d (burst %d); backing memory not released",
			cap(h.items), burst)
	}
	// And the drained heap keeps working.
	h.Push(readyTask{readyAt: 1, seq: 1})
	h.Push(readyTask{readyAt: 0, seq: 0})
	if got := h.Pop(); got.seq != 0 {
		t.Errorf("pop after drain = %+v, want seq 0", got)
	}
}

// TestSJFHeapMatchesSortOrder cross-checks the SJF key against a naive
// ordering: popping must yield tasks by work, ties by sequence — exactly
// the old stable-sort order.
func TestSJFHeapMatchesSortOrder(t *testing.T) {
	h := taskHeap{less: sjfLess}
	works := []float64{5, 1, 3, 1, 9, 0, 3}
	for i, w := range works {
		h.Push(readyTask{work: w, seq: i})
	}
	want := []int{5, 1, 3, 2, 6, 0, 4} // by (work, seq)
	for i, seq := range want {
		if got := h.Pop(); got.seq != seq {
			t.Fatalf("pop %d = seq %d, want %d", i, got.seq, seq)
		}
	}
}
