//go:build race

package online

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
