package online

import (
	"fmt"
	"strings"
)

// Summary renders a run's result as the multi-line human report shared
// by cmd/wfload and cmd/sweep's online block.
func Summary(cfg *Config, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "online: %d instances, mean interarrival %.0fs, %s/%s, pool [%d, %d], scaler %s, dispatch %s\n",
		cfg.Instances, cfg.MeanInterarrival, cfg.Type, cfg.Region,
		cfg.MinVMs, cfg.MaxVMs, cfg.Scaler.Name(), cfg.Dispatch)
	fmt.Fprintf(&b, "  response  p50 %7.0fs  p90 %7.0fs  p99 %7.0fs  max %7.0fs\n",
		res.ResponseTimes.Median, res.ResponseTimes.P90, res.ResponseTimes.P99, res.ResponseTimes.Max)
	if cfg.Deadline > 0 {
		fmt.Fprintf(&b, "  SLA       %.1f%% within %.0fs (%d of %d)\n",
			100*float64(res.SLAMet)/float64(res.ResponseTimes.N), cfg.Deadline, res.SLAMet, res.ResponseTimes.N)
	}
	fmt.Fprintf(&b, "  pool      peak %d VMs, %d rented, utilization %.0f%%\n",
		res.PeakVMs, res.VMsRented, 100*res.Utilization())
	fmt.Fprintf(&b, "  cost      $%.2f over %.0fs makespan (%s)\n",
		res.TotalCost, res.Makespan, cfg.Market.String())
	if res.Crashes+res.Preemptions > 0 {
		fmt.Fprintf(&b, "  faults    %d crashes, %d preemptions\n", res.Crashes, res.Preemptions)
	}
	if res.ColdStartWaitS > 0 {
		fmt.Fprintf(&b, "  cold      %.0fs of boot across rentals\n", res.ColdStartWaitS)
	}
	return b.String()
}
