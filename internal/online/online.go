// Package online complements the paper's offline (static) schedulers with
// an instance-intensive execution model from its related work (Sect. II):
// workflow instances arrive continuously, tasks are dispatched to a shared
// elastic VM pool, and an auto-scaling policy in the style of Mao &
// Humphrey rents VMs when ready tasks queue up and releases idle VMs at
// their BTU boundaries (terminating mid-BTU would waste money already
// paid).
//
// The package reuses the repository's platform model and event queue; its
// results expose the same cost/idle economics the paper studies, but under
// load instead of for a single DAG.
package online

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/eventq"
	"repro/internal/stats"
)

// Config parameterizes one online simulation.
type Config struct {
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// between workflow instances, in seconds.
	MeanInterarrival float64
	// Instances is the number of workflow instances to run.
	Instances int
	// Instance builds the i-th arriving workflow; it may use the RNG for
	// per-instance variation. The returned workflow must be valid.
	Instance func(i int, r *stats.RNG) *dag.Workflow
	// Type and Region fix the pool's VM flavour (homogeneous pool, like
	// the paper's homogeneous experiments).
	Type   cloud.InstanceType
	Region cloud.Region
	// Platform supplies execution times; nil selects the default.
	Platform *cloud.Platform
	// MinVMs VMs are kept alive even when idle; the pool never exceeds
	// MaxVMs.
	MinVMs, MaxVMs int
	// EagerScaleDown releases a VM the moment it idles with an empty
	// queue, instead of waiting for its BTU boundary. The BTU is already
	// paid either way, so eager release can only lose capacity — the
	// ablation quantifying why Mao & Humphrey-style auto-scalers terminate
	// at the billing boundary.
	EagerScaleDown bool
	// Dispatch selects the ready-queue order: FIFO (default) or SJF
	// (shortest job first), the classic mean-response-time optimization
	// for heavy-tailed task sizes.
	Dispatch Dispatch
	// Seed drives arrivals and instance generation.
	Seed uint64
}

// Dispatch is a ready-queue ordering policy.
type Dispatch int

// The dispatch policies.
const (
	// FIFO serves ready tasks in arrival order.
	FIFO Dispatch = iota
	// SJF serves the shortest ready task first (ties by arrival). With
	// Pareto-sized tasks it cuts mean response time at the cost of
	// delaying the heavy tail.
	SJF
)

// String names the policy.
func (d Dispatch) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case SJF:
		return "sjf"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Result is the measured outcome of an online run.
type Result struct {
	// ResponseTimes summarizes per-instance response times (arrival to
	// completion of the instance's last task), in seconds; Responses holds
	// the raw values in completion order for SLA analysis.
	ResponseTimes stats.Summary
	Responses     []float64
	// TotalCost is the rental bill in USD.
	TotalCost float64
	// PeakVMs is the largest concurrently rented pool size.
	PeakVMs int
	// VMsRented counts distinct rentals over the run.
	VMsRented int
	// BusySeconds and PaidSeconds give the pool utilization.
	BusySeconds, PaidSeconds float64
	// Makespan is the completion time of the last task, from the first
	// arrival at time zero.
	Makespan float64
	// Events counts dispatched simulator events.
	Events int
}

// Utilization returns BusySeconds/PaidSeconds, or 0 for an idle run.
func (r *Result) Utilization() float64 {
	if r.PaidSeconds == 0 {
		return 0
	}
	return r.BusySeconds / r.PaidSeconds
}

// MeetFraction returns the fraction of instances whose response time was
// within the deadline — the online SLA view of a pool configuration.
func (r *Result) MeetFraction(deadline float64) float64 {
	if len(r.Responses) == 0 {
		return 0
	}
	met := 0
	for _, t := range r.Responses {
		if t <= deadline {
			met++
		}
	}
	return float64(met) / float64(len(r.Responses))
}

// vm is one pool machine.
type vm struct {
	rentAt   float64
	busy     bool
	busySum  float64
	dead     bool
	paidBTUs int
}

// readyTask is a dispatchable task of some instance.
type readyTask struct {
	inst    int
	task    dag.TaskID
	readyAt float64
	seq     int // FIFO tie-break
}

// Run executes the online simulation.
func Run(cfg Config) (*Result, error) {
	if err := checkConfig(&cfg); err != nil {
		return nil, err
	}
	r := stats.NewRNG(cfg.Seed)
	res := &Result{}

	type instance struct {
		wf        *dag.Workflow
		arrivedAt float64
		pending   []int // unfinished predecessor counts per task
		remaining int
	}
	instances := make([]*instance, 0, cfg.Instances)

	var (
		q         eventq.Queue
		now       float64
		pool      []*vm
		queue     []readyTask
		nextSeq   int
		tasksLeft int // tasks not yet finished, across arrived and future instances
	)
	// Until every instance has arrived we cannot know the total; track
	// arrivals separately so the pool does not retire early.
	arrivalsLeft := cfg.Instances

	alive := func() (idleVMs []*vm, n int) {
		for _, m := range pool {
			if m.dead {
				continue
			}
			n++
			if !m.busy {
				idleVMs = append(idleVMs, m)
			}
		}
		return idleVMs, n
	}

	// retire bills a VM through its current BTU boundary and removes it
	// from the pool.
	retire := func(m *vm) {
		m.dead = true
		res.TotalCost += float64(m.paidBTUs) * cfg.Region.Price(cfg.Type)
		res.PaidSeconds += float64(m.paidBTUs) * cloud.BTU
		res.BusySeconds += m.busySum
	}

	var dispatch func()

	// btuCheck releases an idle VM at its BTU boundary, or extends the
	// lease by another BTU when it is still working (or protected by
	// MinVMs).
	var btuCheck func(m *vm)
	btuCheck = func(m *vm) {
		if m.dead {
			return
		}
		// After the last task of the last instance the warm-pool floor no
		// longer applies: everything drains so the simulation terminates.
		drained := arrivalsLeft == 0 && tasksLeft == 0
		_, n := alive()
		if !m.busy && len(queue) == 0 && (n > cfg.MinVMs || drained) {
			retire(m)
			return
		}
		m.paidBTUs++
		q.Push(m.rentAt+float64(m.paidBTUs)*cloud.BTU, func() { btuCheck(m) })
	}

	rent := func() *vm {
		m := &vm{rentAt: now, paidBTUs: 1}
		pool = append(pool, m)
		res.VMsRented++
		if _, n := alive(); n > res.PeakVMs {
			res.PeakVMs = n
		}
		q.Push(m.rentAt+cloud.BTU, func() { btuCheck(m) })
		return m
	}

	responseTimes := make([]float64, 0, cfg.Instances)

	var startTask func(m *vm, rt readyTask)
	startTask = func(m *vm, rt readyTask) {
		inst := instances[rt.inst]
		m.busy = true
		et := cfg.Platform.ExecTime(inst.wf.Task(rt.task).Work, cfg.Type)
		m.busySum += et
		q.Push(now+et, func() {
			m.busy = false
			tasksLeft--
			inst.remaining--
			if inst.remaining == 0 {
				responseTimes = append(responseTimes, now-inst.arrivedAt)
			}
			for _, s := range inst.wf.Succ(rt.task) {
				inst.pending[s]--
				if inst.pending[s] == 0 {
					queue = append(queue, readyTask{inst: rt.inst, task: s, readyAt: now, seq: nextSeq})
					nextSeq++
				}
			}
			dispatch()
			if cfg.EagerScaleDown && !m.busy && !m.dead && len(queue) == 0 {
				if _, n := alive(); n > cfg.MinVMs || (arrivalsLeft == 0 && tasksLeft == 0) {
					retire(m)
				}
			}
		})
	}

	dispatch = func() {
		if len(queue) == 0 {
			return
		}
		switch cfg.Dispatch {
		case SJF:
			sort.SliceStable(queue, func(i, j int) bool {
				wi := instances[queue[i].inst].wf.Task(queue[i].task).Work
				wj := instances[queue[j].inst].wf.Task(queue[j].task).Work
				if wi != wj {
					return wi < wj
				}
				return queue[i].seq < queue[j].seq
			})
		default:
			sort.SliceStable(queue, func(i, j int) bool {
				if queue[i].readyAt != queue[j].readyAt {
					return queue[i].readyAt < queue[j].readyAt
				}
				return queue[i].seq < queue[j].seq
			})
		}
		idle, n := alive()
		// Scale up: one new VM per queued task beyond the idle capacity.
		for len(queue) > len(idle) && n < cfg.MaxVMs {
			idle = append(idle, rent())
			n++
		}
		k := len(queue)
		if len(idle) < k {
			k = len(idle)
		}
		for i := 0; i < k; i++ {
			startTask(idle[i], queue[i])
		}
		queue = queue[k:]
	}

	arrive := func(i int) {
		wf := cfg.Instance(i, r)
		if err := wf.Freeze(); err != nil {
			panic(fmt.Sprintf("online: instance %d invalid: %v", i, err))
		}
		arrivalsLeft--
		tasksLeft += wf.Len()
		inst := &instance{wf: wf, arrivedAt: now, remaining: wf.Len()}
		inst.pending = make([]int, wf.Len())
		for id := 0; id < wf.Len(); id++ {
			inst.pending[id] = len(wf.Pred(dag.TaskID(id)))
		}
		instances = append(instances, inst)
		for _, e := range wf.Entries() {
			queue = append(queue, readyTask{inst: len(instances) - 1, task: e, readyAt: now, seq: nextSeq})
			nextSeq++
		}
		dispatch()
	}

	// Pre-schedule all arrivals (exponential gaps).
	t := 0.0
	for i := 0; i < cfg.Instances; i++ {
		i := i
		q.Push(t, func() { arrive(i) })
		t += expSample(r, cfg.MeanInterarrival)
	}
	// Warm pool.
	for i := 0; i < cfg.MinVMs; i++ {
		rent()
	}

	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		if e.Time < now-1e-9 {
			return nil, fmt.Errorf("online: time ran backwards (%v -> %v)", now, e.Time)
		}
		now = e.Time
		res.Events++
		e.Fire()
	}

	// Close out: retire every surviving VM.
	for _, m := range pool {
		if !m.dead {
			retire(m)
		}
	}
	if len(responseTimes) != cfg.Instances {
		return nil, fmt.Errorf("online: %d of %d instances completed", len(responseTimes), cfg.Instances)
	}
	res.ResponseTimes = stats.Summarize(responseTimes)
	res.Responses = responseTimes
	res.Makespan = now
	return res, nil
}

func checkConfig(cfg *Config) error {
	if cfg.MeanInterarrival <= 0 {
		return fmt.Errorf("online: non-positive mean interarrival %v", cfg.MeanInterarrival)
	}
	if cfg.Instances <= 0 {
		return fmt.Errorf("online: non-positive instance count %d", cfg.Instances)
	}
	if cfg.Instance == nil {
		return fmt.Errorf("online: nil instance builder")
	}
	if cfg.MinVMs < 0 || cfg.MaxVMs <= 0 || cfg.MinVMs > cfg.MaxVMs {
		return fmt.Errorf("online: bad pool bounds [%d, %d]", cfg.MinVMs, cfg.MaxVMs)
	}
	if cfg.Platform == nil {
		cfg.Platform = cloud.NewPlatform()
	}
	return nil
}

// expSample draws an exponential variate with the given mean.
func expSample(r *stats.RNG, mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
