// Package online is the repository's continuous-traffic autoscaling
// harness, complementing the paper's offline (static) schedulers with the
// instance-intensive execution model of its related work (Sect. II):
// workflow instances arrive in an open loop (exponential inter-arrival
// gaps, arrivals never wait for the system), tasks are dispatched to a
// shared elastic VM pool, and a pluggable auto-scaling policy (Scaler)
// decides the pool's target size while scale-*down* follows Mao &
// Humphrey: an idle VM is only released at its billing-unit boundary,
// because the unit is paid either way and terminating mid-unit wastes
// money already spent. Per-second billing is the degenerate case — the
// boundary is everywhere, so surplus idle VMs release immediately.
//
// The harness composes the repository's economics and reliability layers:
// a market.Model attaches cold-start draws (a fresh VM cannot execute
// before its boot completes), billing granularities and spot pricing to
// every rent, and a fault.Config injects VM crashes — plus spot
// preemptions when the market is spot — that requeue the victim's running
// task. Workflow mixes are drawn from ndwf templates (Config.Mix), and
// an obs.Recorder/Registry expose per-VM lease tracks for the Perfetto
// exporter and pool gauges for Prometheus. Every stochastic input is
// seed-derived, so a run is a pure function of its Config.
package online

import (
	"fmt"
	"math"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/eventq"
	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ewmaAlpha weights the arrival-rate and instance-work moving averages
// the Predictive scaler reads.
const ewmaAlpha = 0.2

// Config parameterizes one online simulation.
type Config struct {
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// between workflow instances, in seconds.
	MeanInterarrival float64
	// Instances is the number of workflow instances to run.
	Instances int
	// Instance builds the i-th arriving workflow; it may use the RNG for
	// per-instance variation. The returned workflow must be valid.
	// Exactly one of Instance and Mix must be set.
	Instance func(i int, r *stats.RNG) *dag.Workflow
	// Mix draws each instance from weighted non-deterministic templates
	// instead: instance i's template choice and sample seed are hash-
	// derived from (Seed, i), deterministic and order-independent.
	Mix []MixEntry
	// Type and Region fix the pool's VM flavour (homogeneous pool, like
	// the paper's homogeneous experiments).
	Type   cloud.InstanceType
	Region cloud.Region
	// Platform supplies execution times; nil selects the default.
	Platform *cloud.Platform
	// MinVMs VMs are kept alive even when idle; the pool never exceeds
	// MaxVMs.
	MinVMs, MaxVMs int
	// Scaler is the auto-scaling policy; nil selects Reactive.
	Scaler Scaler
	// Deadline is the per-instance response-time SLA in seconds (0 = no
	// SLA): input to the Deadline scaler and the SLAMet count.
	Deadline float64
	// EagerScaleDown releases a VM the moment it idles with an empty
	// queue, instead of waiting for its billing boundary. Under per-BTU
	// or per-minute billing the unit is already paid either way, so eager
	// release can only lose capacity — the ablation quantifying why Mao &
	// Humphrey-style auto-scalers terminate at the billing boundary.
	EagerScaleDown bool
	// Dispatch selects the ready-queue order: FIFO (default) or SJF
	// (shortest job first), the classic mean-response-time optimization
	// for heavy-tailed task sizes.
	Dispatch Dispatch
	// Market prices the pool: cold-start draws on every rent, billing
	// granularity, spot discounts and traces. Nil is the paper's
	// economics — on-demand, per-BTU, pre-booted VMs — reproduced
	// bit-for-bit. The model's WarmPool and Fallback knobs do not apply
	// here: MinVMs is the harness's warm pool, and preempted capacity is
	// re-rented by the scaler on demand.
	Market *market.Model
	// Faults injects VM crashes (CrashRate) and, when the market is spot,
	// provider preemptions (SpotPreemptRate). A killed VM is billed for
	// its held span and its running task requeues; tasks are never lost.
	Faults *fault.Config
	// Recorder, when non-nil, receives the run's telemetry as standard
	// obs events (lease/boot/rollover/task/crash/preempt), so the stream
	// renders in the Perfetto exporter with one track per VM lease.
	Recorder obs.Recorder
	// Metrics, when non-nil, registers pool-size/queue-depth gauges and
	// outcome counters (instances, SLA attainment, rentals, crashes,
	// preemptions, cost) labelled by scaler.
	Metrics *obs.Registry
	// Seed drives arrivals and instance generation.
	Seed uint64
}

// Dispatch is a ready-queue ordering policy.
type Dispatch int

// The dispatch policies.
const (
	// FIFO serves ready tasks in arrival order.
	FIFO Dispatch = iota
	// SJF serves the shortest ready task first (ties by arrival). With
	// Pareto-sized tasks it cuts mean response time at the cost of
	// delaying the heavy tail.
	SJF
)

// String names the policy.
func (d Dispatch) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case SJF:
		return "sjf"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// ParseDispatch resolves a dispatch policy by name, case-insensitively.
func ParseDispatch(s string) (Dispatch, error) {
	switch {
	case s == "" || equalFold(s, "fifo"):
		return FIFO, nil
	case equalFold(s, "sjf"):
		return SJF, nil
	}
	return 0, fmt.Errorf("online: unknown dispatch %q (valid: fifo, sjf)", s)
}

// equalFold is strings.EqualFold for ASCII policy names.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Result is the measured outcome of an online run.
type Result struct {
	// ResponseTimes summarizes per-instance response times (arrival to
	// completion of the instance's last task), in seconds; Responses holds
	// the raw values in completion order for SLA analysis.
	ResponseTimes stats.Summary
	Responses     []float64
	// TotalCost is the rental bill in USD.
	TotalCost float64
	// PeakVMs is the largest concurrently rented pool size.
	PeakVMs int
	// VMsRented counts distinct rentals over the run.
	VMsRented int
	// BusySeconds and PaidSeconds give the pool utilization.
	BusySeconds, PaidSeconds float64
	// Makespan is the completion time of the last task, from the first
	// arrival at time zero.
	Makespan float64
	// Events counts dispatched simulator events.
	Events int
	// Crashes and Preemptions count VM leases lost to the fault model
	// (preemptions are spot reclamations, a distinct cause from crashes).
	Crashes, Preemptions int
	// ColdStartWaitS sums the cold-start delays drawn across rentals.
	ColdStartWaitS float64
	// SLAMet counts instances whose response time met Config.Deadline;
	// -1 when no deadline was configured.
	SLAMet int
}

// Utilization returns BusySeconds/PaidSeconds, or 0 for an idle run.
func (r *Result) Utilization() float64 {
	if r.PaidSeconds == 0 {
		return 0
	}
	return r.BusySeconds / r.PaidSeconds
}

// MeetFraction returns the fraction of instances whose response time was
// within the deadline — the online SLA view of a pool configuration.
func (r *Result) MeetFraction(deadline float64) float64 {
	if len(r.Responses) == 0 {
		return 0
	}
	met := 0
	for _, t := range r.Responses {
		if t <= deadline {
			met++
		}
	}
	return float64(met) / float64(len(r.Responses))
}

// vm is one pool machine.
type vm struct {
	id        int
	rentAt    float64
	readyAt   float64 // boot completes; tasks cannot execute earlier
	busy      bool
	busySum   float64
	dead      bool
	paidUnits int
	lease     *market.Lease
	// cur is the assigned task while busy; curStart its execution start
	// (after any boot wait) — what a crash mid-task must requeue and
	// account.
	cur      readyTask
	curStart float64
	hasCur   bool
}

// Run executes the online simulation.
func Run(cfg Config) (*Result, error) {
	if err := checkConfig(&cfg); err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if cfg.Faults != nil && cfg.Faults.Active() {
		var err error
		if inj, err = fault.NewInjector(*cfg.Faults); err != nil {
			return nil, err
		}
	}
	r := stats.NewRNG(cfg.Seed)
	res := &Result{SLAMet: -1}
	if cfg.Deadline > 0 {
		res.SLAMet = 0
	}

	// Billing cadence: the market's unit for per-BTU and per-minute
	// leases; per-second has no sunk cost to wait out, so scale-down goes
	// eager instead of scheduling an event every simulated second.
	unit := cloud.BTU
	perSecond := false
	if cfg.Market != nil {
		unit = cfg.Market.Gran.Unit()
		perSecond = cfg.Market.Gran == market.PerSecond
	}
	rec := cfg.Recorder
	var met *poolMetrics
	if cfg.Metrics != nil {
		met = newPoolMetrics(cfg.Metrics, cfg.Scaler.Name())
	}

	type instance struct {
		wf        *dag.Workflow
		arrivedAt float64
		pending   []int // unfinished predecessor counts per task
		remaining int
	}
	instances := make([]*instance, 0, cfg.Instances)

	var (
		q          eventq.Queue
		now        float64
		live       []*vm // rented, not-yet-retired VMs in rent order
		busyCount  int
		ready      taskHeap
		queuedWork float64 // summed exec time of ready tasks
		nextSeq    int
		nextTaskID int32
		tasksLeft  int // tasks not yet finished, across arrived and future instances
		// EWMA state for the Predictive scaler, updated per arrival.
		ewmaRate     float64
		ewmaInstWork float64
		lastArrival  float64
	)
	if cfg.Dispatch == SJF {
		ready.less = sjfLess
	} else {
		ready.less = fifoLess
	}
	// Until every instance has arrived we cannot know the total; track
	// arrivals separately so the pool does not retire early.
	arrivalsLeft := cfg.Instances

	pushReady := func(rt readyTask) {
		ready.Push(rt)
		queuedWork += cfg.Platform.ExecTime(rt.work, cfg.Type)
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindTaskQueued, T: rt.readyAt, VM: -1, Task: rt.id, Attempt: rt.attempt})
		}
	}
	popReady := func() readyTask {
		rt := ready.Pop()
		queuedWork -= cfg.Platform.ExecTime(rt.work, cfg.Type)
		if ready.Len() == 0 {
			queuedWork = 0 // shed float drift at every drain
		}
		return rt
	}

	// removeLive drops m from the live set, preserving rent order (the
	// order dispatch scans for idle capacity, and the order the paper's
	// pool demos billed in).
	removeLive := func(m *vm) {
		for i, v := range live {
			if v == m {
				copy(live[i:], live[i+1:])
				live[len(live)-1] = nil
				live = live[:len(live)-1]
				return
			}
		}
	}

	// bill closes the books on m's lease held for span seconds and
	// returns the lease cost.
	bill := func(m *vm, span float64) float64 {
		cost := m.lease.Cost(m.rentAt, span, cfg.Type, cfg.Region)
		res.TotalCost += cost
		res.PaidSeconds += m.lease.PaidSeconds(span)
		res.BusySeconds += m.busySum
		if met != nil {
			met.costs.Add(cost)
			met.pool.Set(float64(len(live)))
		}
		return cost
	}

	// retire releases an idle VM: dead, out of the live set, billed for
	// the units it committed to (actual span under per-second billing,
	// where nothing is committed beyond the second in progress).
	retire := func(m *vm) {
		m.dead = true
		removeLive(m)
		span := now - m.rentAt
		if !perSecond {
			span = float64(m.paidUnits) * unit
		}
		cost := bill(m, span)
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindVMLeaseStop, T: now, VM: int32(m.id), Task: -1, Value: cost})
		}
	}

	var dispatch func()

	// unitCheck fires at m's billing-unit boundaries: release the VM if
	// it idles with an empty queue (and the pool is above its floor, or
	// the run has drained), otherwise commit to another unit.
	var unitCheck func(m *vm)
	unitCheck = func(m *vm) {
		if m.dead {
			return
		}
		// After the last task of the last instance the warm-pool floor no
		// longer applies: everything drains so the simulation terminates.
		drained := arrivalsLeft == 0 && tasksLeft == 0
		if !m.busy && ready.Len() == 0 && (len(live) > cfg.MinVMs || drained) {
			retire(m)
			return
		}
		m.paidUnits++
		if rec != nil && m.lease.BTUBilled() {
			rec.Record(obs.Event{Kind: obs.KindVMBTURollover, T: now, VM: int32(m.id), Task: -1})
		}
		q.Push(m.rentAt+float64(m.paidUnits)*unit, func() { unitCheck(m) })
	}

	// kill is a crash or spot preemption: the lease is billed for its
	// held span, the running task (if any) requeues with a fresh attempt,
	// and the scaler re-rents on demand.
	kill := func(m *vm, preempt bool) {
		if m.dead {
			return
		}
		m.dead = true
		removeLive(m)
		if m.hasCur {
			if now > m.curStart {
				m.busySum += now - m.curStart // partial execution was real work
			}
			busyCount--
			rt := m.cur
			rt.attempt++
			rt.readyAt = now
			rt.seq = nextSeq
			nextSeq++
			m.hasCur = false
			pushReady(rt)
		}
		cost := bill(m, now-m.rentAt)
		kind := obs.KindVMCrash
		if preempt {
			res.Preemptions++
			kind = obs.KindVMPreempt
			if met != nil {
				met.preempts.Inc()
			}
		} else {
			res.Crashes++
			if met != nil {
				met.crashes.Inc()
			}
		}
		if rec != nil {
			rec.Record(obs.Event{Kind: kind, T: now, VM: int32(m.id), Task: -1})
			rec.Record(obs.Event{Kind: obs.KindVMLeaseStop, T: now, VM: int32(m.id), Task: -1, Value: cost})
		}
		dispatch()
	}

	rent := func() *vm {
		id := res.VMsRented
		m := &vm{id: id, rentAt: now, readyAt: now, paidUnits: 1}
		if cfg.Market != nil {
			m.lease = cfg.Market.Terms(id, false)
			delay := m.lease.ColdStartDelay()
			m.readyAt = now + delay
			res.ColdStartWaitS += delay
		}
		live = append(live, m)
		res.VMsRented++
		if len(live) > res.PeakVMs {
			res.PeakVMs = len(live)
		}
		if !perSecond {
			q.Push(m.rentAt+unit, func() { unitCheck(m) })
		}
		if inj != nil {
			killAt, preempt := inj.CrashAfter(uint64(id)), false
			if m.lease.IsSpot() {
				if at := inj.PreemptAfter(uint64(id)); at < killAt {
					killAt, preempt = at, true
				}
			}
			if !math.IsInf(killAt, 1) {
				preempt := preempt
				q.Push(m.rentAt+killAt, func() { kill(m, preempt) })
			}
		}
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindVMLeaseStart, T: m.rentAt, VM: int32(m.id), Task: -1,
				Value: m.readyAt - m.rentAt, Label: cfg.Type.String() + m.lease.LabelSuffix()})
			if m.readyAt > m.rentAt {
				rec.Record(obs.Event{Kind: obs.KindVMBootDone, T: m.readyAt, VM: int32(m.id), Task: -1})
			}
		}
		if met != nil {
			met.rented.Inc()
			met.pool.Set(float64(len(live)))
		}
		return m
	}

	responseTimes := make([]float64, 0, cfg.Instances)

	var startTask func(m *vm, rt readyTask)
	startTask = func(m *vm, rt readyTask) {
		inst := instances[rt.inst]
		m.busy = true
		busyCount++
		st := now
		if m.readyAt > st {
			st = m.readyAt // a fresh VM cannot run work before its boot completes
		}
		et := cfg.Platform.ExecTime(rt.work, cfg.Type)
		m.cur, m.curStart, m.hasCur = rt, st, true
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindTaskStart, T: st, VM: int32(m.id), Task: rt.id,
				Attempt: rt.attempt, Value: et, Label: inst.wf.Task(rt.task).Name})
		}
		q.Push(st+et, func() {
			if m.dead {
				return // the lease died first; kill() already requeued rt
			}
			m.busy = false
			busyCount--
			m.hasCur = false
			m.busySum += et
			tasksLeft--
			inst.remaining--
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.KindTaskFinish, T: now, VM: int32(m.id), Task: rt.id, Attempt: rt.attempt})
			}
			if inst.remaining == 0 {
				rtime := now - inst.arrivedAt
				responseTimes = append(responseTimes, rtime)
				if cfg.Deadline > 0 && rtime <= cfg.Deadline {
					res.SLAMet++
					if met != nil {
						met.slaMet.Inc()
					}
				}
				if met != nil {
					met.instances.Inc()
				}
				instances[rt.inst] = nil // let the sampled DAG be collected
			}
			for _, s := range inst.wf.Succ(rt.task) {
				inst.pending[s]--
				if inst.pending[s] == 0 {
					pushReady(readyTask{inst: rt.inst, task: s, readyAt: now, seq: nextSeq,
						work: inst.wf.Task(s).Work, id: nextTaskID, attempt: 1})
					nextSeq++
					nextTaskID++
				}
			}
			dispatch()
			if cfg.EagerScaleDown && !m.busy && !m.dead && ready.Len() == 0 {
				if len(live) > cfg.MinVMs || (arrivalsLeft == 0 && tasksLeft == 0) {
					retire(m)
				}
			}
		})
	}

	dispatch = func() {
		if ready.Len() > 0 {
			want := cfg.Scaler.Desired(PoolState{
				Now:          now,
				Live:         len(live),
				Idle:         len(live) - busyCount,
				QueueDepth:   ready.Len(),
				QueuedWork:   queuedWork,
				ArrivalRate:  ewmaRate,
				InstanceWork: ewmaInstWork,
				Deadline:     cfg.Deadline,
				MinVMs:       cfg.MinVMs,
				MaxVMs:       cfg.MaxVMs,
			})
			// A non-empty queue must drain no matter how wrong the policy's
			// estimate is: floor at one VM, cap at the pool bound. Scalers
			// only grow the pool — release stays at billing boundaries.
			if want < 1 {
				want = 1
			}
			if want > cfg.MaxVMs {
				want = cfg.MaxVMs
			}
			for len(live) < want {
				rent()
			}
			k := len(live) - busyCount
			if k > ready.Len() {
				k = ready.Len()
			}
			for _, m := range live {
				if k == 0 {
					break
				}
				if m.busy {
					continue
				}
				startTask(m, popReady())
				k--
			}
		}
		if perSecond && ready.Len() == 0 {
			// Per-second billing has no sunk unit to ride out: surplus idle
			// VMs release immediately (the degenerate billing boundary).
			drained := arrivalsLeft == 0 && tasksLeft == 0
			for i := len(live) - 1; i >= 0 && (len(live) > cfg.MinVMs || drained); i-- {
				if m := live[i]; !m.busy {
					retire(m)
				}
			}
		}
		if met != nil {
			met.queue.Set(float64(ready.Len()))
			met.pool.Set(float64(len(live)))
		}
	}

	arrive := func(i int) {
		wf := cfg.Instance(i, r)
		if err := wf.Freeze(); err != nil {
			panic(fmt.Sprintf("online: instance %d invalid: %v", i, err))
		}
		arrivalsLeft--
		tasksLeft += wf.Len()
		inst := &instance{wf: wf, arrivedAt: now, remaining: wf.Len()}
		inst.pending = make([]int, wf.Len())
		totalWork := 0.0
		for id := 0; id < wf.Len(); id++ {
			inst.pending[id] = len(wf.Pred(dag.TaskID(id)))
			totalWork += wf.Task(dag.TaskID(id)).Work
		}
		instExec := cfg.Platform.ExecTime(totalWork, cfg.Type)
		if i == 0 {
			ewmaRate = 1 / cfg.MeanInterarrival
			ewmaInstWork = instExec
		} else {
			if gap := now - lastArrival; gap > 0 {
				ewmaRate = ewmaAlpha*(1/gap) + (1-ewmaAlpha)*ewmaRate
			}
			ewmaInstWork = ewmaAlpha*instExec + (1-ewmaAlpha)*ewmaInstWork
		}
		lastArrival = now
		instances = append(instances, inst)
		for _, e := range wf.Entries() {
			pushReady(readyTask{inst: len(instances) - 1, task: e, readyAt: now, seq: nextSeq,
				work: wf.Task(e).Work, id: nextTaskID, attempt: 1})
			nextSeq++
			nextTaskID++
		}
		dispatch()
	}

	// Pre-schedule all arrivals (exponential gaps). Drawing every gap up
	// front keeps the arrival process independent of per-instance builder
	// draws, so two configs differing only in the builder see the same
	// arrival times.
	t := 0.0
	for i := 0; i < cfg.Instances; i++ {
		i := i
		q.Push(t, func() { arrive(i) })
		t += expSample(r, cfg.MeanInterarrival)
	}
	// Warm pool.
	for i := 0; i < cfg.MinVMs; i++ {
		rent()
	}

	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		if e.Time < now-1e-9 {
			return nil, fmt.Errorf("online: time ran backwards (%v -> %v)", now, e.Time)
		}
		now = e.Time
		res.Events++
		e.Fire()
	}

	// Close out: retire every surviving VM, in rent order.
	for len(live) > 0 {
		retire(live[0])
	}
	if len(responseTimes) != cfg.Instances {
		return nil, fmt.Errorf("online: %d of %d instances completed", len(responseTimes), cfg.Instances)
	}
	res.ResponseTimes = stats.Summarize(responseTimes)
	res.Responses = responseTimes
	res.Makespan = now
	if met != nil {
		met.pool.Set(0)
		met.queue.Set(0)
	}
	return res, nil
}

func checkConfig(cfg *Config) error {
	if cfg.MeanInterarrival <= 0 {
		return fmt.Errorf("online: non-positive mean interarrival %v", cfg.MeanInterarrival)
	}
	if cfg.Instances <= 0 {
		return fmt.Errorf("online: non-positive instance count %d", cfg.Instances)
	}
	switch {
	case cfg.Instance == nil && len(cfg.Mix) == 0:
		return fmt.Errorf("online: nil instance builder (set Instance or Mix)")
	case cfg.Instance != nil && len(cfg.Mix) > 0:
		return fmt.Errorf("online: both Instance and Mix set")
	case len(cfg.Mix) > 0:
		if err := validateMix(cfg.Mix); err != nil {
			return err
		}
		cfg.Instance = mixBuilder(cfg.Mix, cfg.Seed)
	}
	if cfg.MinVMs < 0 || cfg.MaxVMs <= 0 || cfg.MinVMs > cfg.MaxVMs {
		return fmt.Errorf("online: bad pool bounds [%d, %d]", cfg.MinVMs, cfg.MaxVMs)
	}
	if cfg.Deadline < 0 {
		return fmt.Errorf("online: negative deadline %v", cfg.Deadline)
	}
	if err := cfg.Market.Validate(); err != nil {
		return err
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Fill().Validate(); err != nil {
			return err
		}
	}
	if cfg.Platform == nil {
		cfg.Platform = cloud.NewPlatform()
	}
	if cfg.Scaler == nil {
		cfg.Scaler = Reactive{}
	}
	return nil
}

// expSample draws an exponential variate with the given mean.
func expSample(r *stats.RNG, mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
