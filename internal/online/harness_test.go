package online

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/ndwf"
	"repro/internal/obs"
)

// marketConfig is baseConfig under a given market model.
func marketConfig(m *market.Model) Config {
	cfg := baseConfig()
	cfg.Market = m
	return cfg
}

func TestColdStartDelaysFirstResponse(t *testing.T) {
	// Pre-booted pool (nil market): the first 3x300s chain responds in
	// exactly the critical path. With a fixed 120s cold start every task
	// of the first instance waits for its VM's boot.
	base, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(marketConfig(&market.Model{Cold: market.ColdStart{Dist: "fixed", Mean: 120}, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if base.ResponseTimes.Min < 900-1e-6 || base.ResponseTimes.Min > 900+1e-6 {
		t.Fatalf("pre-booted min response = %v, want the 900s critical path", base.ResponseTimes.Min)
	}
	// An instance served by a freshly rented VM cannot start before the
	// boot completes; a lone instance always rents fresh.
	lone := marketConfig(&market.Model{Cold: market.ColdStart{Dist: "fixed", Mean: 120}, Seed: 1})
	lone.Instances = 1
	lres, err := Run(lone)
	if err != nil {
		t.Fatal(err)
	}
	if lres.ResponseTimes.Min < 1020-1e-6 {
		t.Errorf("cold-start response = %v, want >= 1020 (900 + 120 boot)", lres.ResponseTimes.Min)
	}
	if cold.ColdStartWaitS < 120*float64(cold.VMsRented)-1e-9 {
		t.Errorf("ColdStartWaitS = %v for %d rentals of 120s boots", cold.ColdStartWaitS, cold.VMsRented)
	}
	if base.ColdStartWaitS != 0 {
		t.Errorf("pre-booted run reports ColdStartWaitS = %v", base.ColdStartWaitS)
	}
}

func TestBillingGranularityOrdersCost(t *testing.T) {
	// Identical load, three billing granularities, no cold starts: the
	// finer the unit, the less idle tail is paid for.
	run := func(g market.Granularity, nilModel bool) *Result {
		t.Helper()
		var m *market.Model
		if !nilModel {
			m = &market.Model{Gran: g, Seed: 1}
		}
		res, err := Run(marketConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	btu := run(market.PerBTU, true)
	minute := run(market.PerMinute, false)
	second := run(market.PerSecond, false)
	// 300s tasks are exact minute multiples, so per-minute can tie
	// per-second; per-BTU pays for the hour-long idle tails either way.
	if !(second.TotalCost <= minute.TotalCost && minute.TotalCost < btu.TotalCost) {
		t.Errorf("cost order violated: per-second %v, per-minute %v, per-BTU %v",
			second.TotalCost, minute.TotalCost, btu.TotalCost)
	}
	// The nil-market path and an explicit per-BTU model are the same
	// economics.
	explicit := run(market.PerBTU, false)
	if explicit.TotalCost != btu.TotalCost {
		t.Errorf("explicit per-BTU cost %v != nil-market cost %v", explicit.TotalCost, btu.TotalCost)
	}
	// Per-second paid time hugs busy time: no instance ends mid-task, so
	// only boot-free idle gaps between dispatches are paid.
	if u := second.Utilization(); u < 0.95 {
		t.Errorf("per-second utilization = %v, want near 1", u)
	}
}

func TestSpotPreemptionRequeuesAndCompletes(t *testing.T) {
	cfg := marketConfig(&market.Model{
		Market: market.Spot,
		Cold:   market.ColdStart{Dist: "fixed", Mean: 30},
		Seed:   1,
	})
	cfg.Faults = &fault.Config{SpotPreemptRate: 2, Seed: 11} // ~2 reclaims per VM-hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTimes.N != cfg.Instances {
		t.Fatalf("completed %d of %d instances", res.ResponseTimes.N, cfg.Instances)
	}
	if res.Preemptions == 0 {
		t.Error("no preemptions at 2 reclaims per VM-hour over a 20-instance run")
	}
	if res.Crashes != 0 {
		t.Errorf("crashes = %d with only SpotPreemptRate configured", res.Crashes)
	}
}

func TestCrashComposesWithPreemption(t *testing.T) {
	cfg := marketConfig(&market.Model{Market: market.Spot, Seed: 1})
	cfg.Faults = &fault.Config{CrashRate: 1, SpotPreemptRate: 1, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTimes.N != cfg.Instances {
		t.Fatalf("completed %d of %d instances", res.ResponseTimes.N, cfg.Instances)
	}
	if res.Crashes+res.Preemptions == 0 {
		t.Error("no lease losses with both crash and preemption rates set")
	}
	// On-demand pools never see preemptions, whatever the fault config.
	od := baseConfig()
	od.Faults = &fault.Config{CrashRate: 1, SpotPreemptRate: 5, Seed: 3}
	ores, err := Run(od)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Preemptions != 0 {
		t.Errorf("on-demand pool reports %d preemptions", ores.Preemptions)
	}
	if ores.ResponseTimes.N != od.Instances {
		t.Fatalf("completed %d of %d instances under crashes", ores.ResponseTimes.N, od.Instances)
	}
}

func TestScalerCatalog(t *testing.T) {
	names := ScalerNames()
	if len(names) != len(Scalers()) {
		t.Fatalf("ScalerNames has %d entries, Scalers %d", len(names), len(Scalers()))
	}
	for _, name := range names {
		s, err := ParseScaler(strings.ToUpper(name))
		if err != nil {
			t.Fatalf("ParseScaler(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ParseScaler(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ParseScaler("nope"); err == nil {
		t.Error("ParseScaler accepted an unknown policy")
	}
	if _, err := ParseDispatch("nope"); err == nil {
		t.Error("ParseDispatch accepted an unknown policy")
	}
	if d, err := ParseDispatch(""); err != nil || d != FIFO {
		t.Errorf("ParseDispatch(\"\") = %v, %v; want FIFO", d, err)
	}
}

func TestScalerDeterminism(t *testing.T) {
	for _, name := range ScalerNames() {
		for _, dispatch := range []Dispatch{FIFO, SJF} {
			s, err := ParseScaler(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := marketConfig(&market.Model{
				Gran: market.PerMinute,
				Cold: market.ColdStart{Dist: "uniform", Min: 30, Max: 90},
				Seed: 1,
			})
			cfg.Scaler = s
			cfg.Dispatch = dispatch
			cfg.Deadline = 2000
			cfg.Faults = &fault.Config{CrashRate: 0.5, Seed: 5}
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, dispatch, err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, dispatch, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: two runs of one config differ:\n%+v\n%+v", name, dispatch, a, b)
			}
			if a.ResponseTimes.N != cfg.Instances {
				t.Errorf("%s/%s: completed %d of %d", name, dispatch, a.ResponseTimes.N, cfg.Instances)
			}
			if a.SLAMet < 0 || a.SLAMet > cfg.Instances {
				t.Errorf("%s/%s: SLAMet = %d", name, dispatch, a.SLAMet)
			}
		}
	}
}

func TestScalersHoldSLAUnderLoad(t *testing.T) {
	// A burstier stream than baseConfig: the deadline and predictive
	// policies must still complete everything within pool bounds.
	for _, name := range ScalerNames() {
		s, err := ParseScaler(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig()
		cfg.MeanInterarrival = 120
		cfg.Instances = 60
		cfg.Scaler = s
		cfg.Deadline = 1800
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ResponseTimes.N != cfg.Instances {
			t.Fatalf("%s: completed %d of %d", name, res.ResponseTimes.N, cfg.Instances)
		}
		if res.PeakVMs > cfg.MaxVMs {
			t.Errorf("%s: peak pool %d exceeds MaxVMs %d", name, res.PeakVMs, cfg.MaxVMs)
		}
		if frac := res.MeetFraction(cfg.Deadline); frac < 0.5 {
			t.Errorf("%s: only %.0f%% of instances met an achievable deadline", name, 100*frac)
		}
	}
}

func mixEntries(t *testing.T) []MixEntry {
	t.Helper()
	order, err := ndwf.Named("order")
	if err != nil {
		t.Fatal(err)
	}
	montage, err := ndwf.Named("montage2")
	if err != nil {
		t.Fatal(err)
	}
	return []MixEntry{{Template: order, Weight: 3}, {Template: montage, Weight: 1}}
}

func TestMixDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Instance = nil
	cfg.Mix = mixEntries(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := baseConfig()
	cfg2.Instance = nil
	cfg2.Mix = mixEntries(t)
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two mix runs of one seed differ:\n%+v\n%+v", a, b)
	}
	// Instance draws are hash-derived per index, so the arrival process
	// matches a fixed-builder run under the same seed.
	fixed, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.ResponseTimes.N != fixed.ResponseTimes.N {
		t.Errorf("mix run completed %d, fixed run %d", a.ResponseTimes.N, fixed.ResponseTimes.N)
	}
}

func TestMixValidation(t *testing.T) {
	order, err := ndwf.Named("order")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero weight", func(c *Config) {
			c.Instance = nil
			c.Mix = []MixEntry{{Template: order, Weight: 0}}
		}},
		{"both instance and mix", func(c *Config) {
			c.Mix = []MixEntry{{Template: order, Weight: 1}}
		}},
		{"invalid template", func(c *Config) {
			c.Instance = nil
			c.Mix = []MixEntry{{Template: ndwf.Template{Name: "empty"}, Weight: 1}}
		}},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}

func TestChromeTraceRendersPoolTimeline(t *testing.T) {
	var col obs.Collector
	cfg := marketConfig(&market.Model{
		Market: market.Spot,
		Gran:   market.PerMinute,
		Cold:   market.ColdStart{Dist: "fixed", Mean: 60},
		Seed:   1,
	})
	cfg.Faults = &fault.Config{SpotPreemptRate: 2, Seed: 11}
	cfg.Recorder = &col
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) == 0 {
		t.Fatal("recorder saw no events")
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col.Events, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}
	for _, want := range []string{`"boot"`, `"preempt"`, `"vm0`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s", want)
		}
	}
	if res.Preemptions > 0 && !strings.Contains(out, "preempt") {
		t.Error("preemptions happened but no preempt marker rendered")
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := baseConfig()
	cfg.Deadline = 2000
	cfg.Metrics = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`online_instances_total{scaler="reactive"} 20`,
		`online_sla_met_total{scaler="reactive"}`,
		`online_pool_vms{scaler="reactive"} 0`,
		`online_vms_rented_total{scaler="reactive"}`,
		`online_cost_usd_total{scaler="reactive"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConfigValidationExtended(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative deadline", func(c *Config) { c.Deadline = -1 }},
		{"bad market", func(c *Config) { c.Market = &market.Model{SpotDiscount: 2} }},
		{"bad faults", func(c *Config) { c.Faults = &fault.Config{CrashRate: -1} }},
		{"bad cold start", func(c *Config) {
			c.Market = &market.Model{Cold: market.ColdStart{Dist: "bogus"}}
		}},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}
