package online

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dag/dagtest"
	"repro/internal/stats"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func chainBuilder(n int, work float64) func(int, *stats.RNG) *dag.Workflow {
	return func(int, *stats.RNG) *dag.Workflow { return dagtest.Chain(n, work) }
}

func baseConfig() Config {
	return Config{
		MeanInterarrival: 600,
		Instances:        20,
		Instance:         chainBuilder(3, 300),
		Type:             cloud.Small,
		Region:           cloud.USEastVirginia,
		MinVMs:           0,
		MaxVMs:           16,
		Seed:             7,
	}
}

func TestRunCompletesAllInstances(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTimes.N != 20 {
		t.Errorf("completed = %d, want 20", res.ResponseTimes.N)
	}
	// A 3x300s chain takes at least 900s end to end.
	if res.ResponseTimes.Min < 900-1e-9 {
		t.Errorf("min response %v below the critical path 900", res.ResponseTimes.Min)
	}
	if res.TotalCost <= 0 || res.PeakVMs <= 0 || res.Events == 0 {
		t.Errorf("suspicious result: %+v", res)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost != b.TotalCost || a.ResponseTimes.Mean != b.ResponseTimes.Mean ||
		a.Events != b.Events || a.VMsRented != b.VMsRented {
		t.Error("identical configs diverged")
	}
}

func TestPoolBoundsRespected(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxVMs = 2
	cfg.MeanInterarrival = 10 // slam the pool
	cfg.Instances = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakVMs > 2 {
		t.Errorf("peak %d exceeds MaxVMs 2", res.PeakVMs)
	}
	if res.ResponseTimes.N != 30 {
		t.Errorf("completed = %d", res.ResponseTimes.N)
	}
}

func TestMinVMsKeptWarm(t *testing.T) {
	cfg := baseConfig()
	cfg.MinVMs = 3
	cfg.Instances = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMsRented < 3 {
		t.Errorf("rented %d, want >= MinVMs 3", res.VMsRented)
	}
	if res.PeakVMs < 3 {
		t.Errorf("peak %d, want >= 3", res.PeakVMs)
	}
}

func TestScaleDownReleasesIdleVMsAtBTUBoundary(t *testing.T) {
	// One tiny instance, then a long quiet period: the pool must not keep
	// billing BTUs forever — the total cost stays at the handful of BTUs
	// around the burst.
	cfg := baseConfig()
	cfg.Instances = 4
	cfg.MeanInterarrival = 100
	cfg.Instance = chainBuilder(1, 60)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: 4 VMs x 1 BTU each.
	if res.TotalCost > 4*0.08+1e-9 {
		t.Errorf("cost = %v, want <= 0.32 (idle VMs must retire at BTU boundaries)", res.TotalCost)
	}
}

func TestFasterArrivalsNeedMoreVMs(t *testing.T) {
	slow := baseConfig()
	slow.MeanInterarrival = 2000
	fast := baseConfig()
	fast.MeanInterarrival = 50
	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.PeakVMs <= rs.PeakVMs {
		t.Errorf("fast arrivals peak %d <= slow arrivals peak %d", rf.PeakVMs, rs.PeakVMs)
	}
}

func TestCappedPoolIncreasesResponseTime(t *testing.T) {
	uncapped := baseConfig()
	uncapped.MeanInterarrival = 50
	uncapped.Instances = 30
	capped := uncapped
	capped.MaxVMs = 1
	ru, err := Run(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ResponseTimes.Mean <= ru.ResponseTimes.Mean {
		t.Errorf("capped pool mean response %v <= uncapped %v",
			rc.ResponseTimes.Mean, ru.ResponseTimes.Mean)
	}
	// And the capped pool is cheaper or equal — the paper's cost/makespan
	// trade-off under load.
	if rc.TotalCost > ru.TotalCost+1e-9 {
		t.Errorf("capped pool cost %v above uncapped %v", rc.TotalCost, ru.TotalCost)
	}
}

func TestFasterInstanceTypeShortensResponses(t *testing.T) {
	small := baseConfig()
	large := baseConfig()
	large.Type = cloud.Large
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	want := rs.ResponseTimes.Mean / cloud.Large.Speedup()
	if math.Abs(rl.ResponseTimes.Mean-want)/want > 0.05 {
		t.Errorf("large mean response %v, want ~%v (pure speed-up at low load)",
			rl.ResponseTimes.Mean, want)
	}
}

func TestParetoMontageStream(t *testing.T) {
	// End-to-end with the paper's Montage under Pareto weights.
	cfg := baseConfig()
	cfg.Instances = 5
	cfg.MeanInterarrival = 3000
	cfg.MaxVMs = 32
	cfg.Instance = func(i int, r *stats.RNG) *dag.Workflow {
		return workload.Pareto.Apply(workflows.PaperMontage(), r.Uint64())
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTimes.N != 5 {
		t.Errorf("completed = %d", res.ResponseTimes.N)
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("utilization = %v", res.Utilization())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"interarrival": func(c *Config) { c.MeanInterarrival = 0 },
		"instances":    func(c *Config) { c.Instances = 0 },
		"builder":      func(c *Config) { c.Instance = nil },
		"min>max":      func(c *Config) { c.MinVMs = 5; c.MaxVMs = 2 },
		"max=0":        func(c *Config) { c.MaxVMs = 0 },
		"min<0":        func(c *Config) { c.MinVMs = -1 },
	}
	for name, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEagerScaleDownNeverCheaperOnlySlower(t *testing.T) {
	// The BTU is paid in full either way, so releasing a VM early cannot
	// reduce cost below the boundary-aware policy on the same arrival
	// stream — but it forces fresh rentals for work that arrives moments
	// later.
	cfg := baseConfig()
	cfg.Instances = 40
	cfg.MeanInterarrival = 300 // arrivals land inside the paid BTUs
	lazy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EagerScaleDown = true
	eager, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eager.ResponseTimes.N != 40 || lazy.ResponseTimes.N != 40 {
		t.Fatal("instances lost")
	}
	if eager.TotalCost < lazy.TotalCost-1e-9 {
		t.Errorf("eager scale-down cost %v below boundary-aware %v — impossible, the BTU is sunk",
			eager.TotalCost, lazy.TotalCost)
	}
	if eager.VMsRented <= lazy.VMsRented {
		t.Errorf("eager rented %d VMs <= lazy %d; expected churn", eager.VMsRented, lazy.VMsRented)
	}
}

func TestSJFImprovesMeanResponseUnderContention(t *testing.T) {
	// Heavy-tailed single-task instances slamming a capped pool: shortest
	// job first must cut the mean response time relative to FIFO.
	build := func(i int, r *stats.RNG) *dag.Workflow {
		d := workload.ExecDist()
		return dagtest.Chain(1, d.Sample(r))
	}
	cfg := Config{
		MeanInterarrival: 100,
		Instances:        120,
		Instance:         build,
		Type:             cloud.Small,
		Region:           cloud.USEastVirginia,
		MaxVMs:           2,
		Seed:             13,
	}
	fifo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dispatch = SJF
	sjf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sjf.ResponseTimes.Mean >= fifo.ResponseTimes.Mean {
		t.Errorf("SJF mean response %v >= FIFO %v", sjf.ResponseTimes.Mean, fifo.ResponseTimes.Mean)
	}
	// The classic price: the tail (max response) suffers under SJF.
	if sjf.ResponseTimes.Max < fifo.ResponseTimes.Max-1e-9 {
		t.Logf("note: SJF also improved the max (%v vs %v) on this draw",
			sjf.ResponseTimes.Max, fifo.ResponseTimes.Max)
	}
}

func TestDispatchStrings(t *testing.T) {
	if FIFO.String() != "fifo" || SJF.String() != "sjf" {
		t.Errorf("dispatch names: %q, %q", FIFO.String(), SJF.String())
	}
}

func TestMeetFraction(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 20 {
		t.Fatalf("raw responses = %d", len(res.Responses))
	}
	if got := res.MeetFraction(res.ResponseTimes.Max + 1); got != 1 {
		t.Errorf("meet fraction above max = %v", got)
	}
	if got := res.MeetFraction(res.ResponseTimes.Min - 1); got != 0 {
		t.Errorf("meet fraction below min = %v", got)
	}
	// At this low load most responses tie at the 900s critical path, so
	// the median deadline covers at least half (here: nearly all).
	mid := res.MeetFraction(res.ResponseTimes.Median)
	if mid < 0.5 || mid > 1 {
		t.Errorf("meet fraction at the median = %v, want >= 0.5", mid)
	}
	empty := &Result{}
	if empty.MeetFraction(100) != 0 {
		t.Error("empty result meet fraction != 0")
	}
}
