package online_test

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dag/dagtest"
	"repro/internal/online"
	"repro/internal/stats"
)

// Example runs a stream of three-task pipelines against an auto-scaled
// pool and reports the service quality and the bill.
func Example() {
	res, err := online.Run(online.Config{
		MeanInterarrival: 400,
		Instances:        50,
		Instance: func(i int, r *stats.RNG) *dag.Workflow {
			return dagtest.Chain(3, 300)
		},
		Type:   cloud.Small,
		Region: cloud.USEastVirginia,
		MaxVMs: 8,
		Seed:   7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d instances, median response %.0fs\n",
		res.ResponseTimes.N, res.ResponseTimes.Median)
	fmt.Printf("peak pool %d VMs, utilization %.0f%%\n", res.PeakVMs, 100*res.Utilization())
	fmt.Printf("SLA at 1000s: %.0f%% met\n", 100*res.MeetFraction(1000))
	// Output:
	// completed 50 instances, median response 900s
	// peak pool 7 VMs, utilization 46%
	// SLA at 1000s: 100% met
}
