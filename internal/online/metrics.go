package online

import "repro/internal/obs"

// poolMetrics is the harness's registry wiring: pool and queue gauges
// plus outcome counters, one series per scaler policy. Registration is
// idempotent (the registry fetches existing families), so repeated runs
// against one registry accumulate counters and overwrite gauges — the
// Prometheus view of a long-running load generator.
type poolMetrics struct {
	pool, queue                                         *obs.Gauge
	instances, slaMet, rented, crashes, preempts, costs *obs.Counter
}

func newPoolMetrics(reg *obs.Registry, scaler string) *poolMetrics {
	return &poolMetrics{
		pool: reg.Gauge("online_pool_vms",
			"Live VM pool size of the online autoscaling harness.", "scaler").With(scaler),
		queue: reg.Gauge("online_queue_depth",
			"Ready tasks awaiting an idle VM.", "scaler").With(scaler),
		instances: reg.Counter("online_instances_total",
			"Workflow instances completed.", "scaler").With(scaler),
		slaMet: reg.Counter("online_sla_met_total",
			"Instances completing within Config.Deadline.", "scaler").With(scaler),
		rented: reg.Counter("online_vms_rented_total",
			"VM leases opened by the autoscaler.", "scaler").With(scaler),
		crashes: reg.Counter("online_vm_crashes_total",
			"VM leases lost to injected crashes.", "scaler").With(scaler),
		preempts: reg.Counter("online_vm_preemptions_total",
			"Spot leases reclaimed by the provider.", "scaler").With(scaler),
		costs: reg.Counter("online_cost_usd_total",
			"Accumulated rental bill in USD.", "scaler").With(scaler),
	}
}
