//go:build !race

package online

// raceEnabled reports whether the race detector is compiled in; the soak
// scales itself down under -race, where the ~10x instrumentation cost
// would dominate CI time without finding anything a smaller run misses.
const raceEnabled = false
