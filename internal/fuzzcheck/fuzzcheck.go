// Package fuzzcheck is the randomized driver of the differential
// correctness harness: it generates seeded random DAGs and workload
// scenarios, sweeps every catalog strategy (plus synthetic strategies
// the catalog cannot produce: cross-region placement, held-lease tails,
// per-second spot billing, warm-pool minutes — and the hedging
// provisioners) through the plan↔sim oracles of internal/validate, and
// shrinks failing cases to minimal reproducers.
//
// A Case is a flat tuple of primitives so that it round-trips through the
// native Go fuzzing corpus format: the committed files under
// testdata/fuzz/ are simultaneously seeds for `go test -fuzz` and a
// deterministic regression suite (`go test` replays every corpus file).
// cmd/wffuzz drives the same generator from the command line for longer
// sweeps and emits shrunk corpus entries for any divergence it finds.
package fuzzcheck

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dag/dagtest"
	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/validate"
	"repro/internal/workload"
)

// The synthetic strategies appended after the scheduling catalog. They
// exist to reach plan states no catalog algorithm produces: leases spread
// across billing regions (cross-region transfer pricing) and held
// reservations (plan.VM.Held).
const (
	// StrategyXRegion places tasks one VM per task, round-robin across all
	// seven regions of Table II.
	StrategyXRegion = "xregion"
	// StrategyHeldTail runs the baseline, then holds the first lease past
	// its last slot and appends one held-but-empty reservation.
	StrategyHeldTail = "heldtail"
	// StrategySpotSec places tasks one VM per task under per-second spot
	// billing with a seeded price trace and uniform cold starts — the
	// finest billing granularity composed with trace-dependent pricing.
	StrategySpotSec = "spotsec"
	// StrategyWarmMin runs the baseline under per-minute billing with a
	// three-VM warm pool and a long fixed cold start, so warm anchoring,
	// warm-idle accounting and minute rounding are all exercised at once.
	StrategyWarmMin = "warmmin"
)

// Strategies lists every strategy name a Case can select: the scheduling
// catalog in order, then the synthetic strategies, then the market
// synthetics and the hedging provisioners. The order is load-bearing —
// corpus entries address strategies by index, so new names only append.
func Strategies() []string {
	cat := sched.Catalog()
	hedges := sched.Hedges()
	out := make([]string, 0, len(cat)+4+len(hedges))
	for _, alg := range cat {
		out = append(out, alg.Name())
	}
	out = append(out, StrategyXRegion, StrategyHeldTail, StrategySpotSec, StrategyWarmMin)
	for _, alg := range hedges {
		out = append(out, alg.Name())
	}
	return out
}

// marketStrategies lists the Strategies() indexes that rent under market
// lease terms — the subset RandomMarket draws from.
func marketStrategies() []int {
	names := Strategies()
	var out []int
	for i, n := range names {
		if n == StrategySpotSec || n == StrategyWarmMin {
			out = append(out, i)
		}
	}
	for _, alg := range sched.Hedges() {
		for i, n := range names {
			if n == alg.Name() {
				out = append(out, i)
			}
		}
	}
	return out
}

// scenarios is the scenario pool a Case indexes into. Order is
// load-bearing for the corpus, like Strategies.
func scenarios() []workload.Scenario {
	return []workload.Scenario{workload.AsIs, workload.Pareto, workload.BestCase,
		workload.WorstCase, workload.DataHeavy}
}

// Case is one fuzz input: a recipe for a workflow, a scenario, a strategy
// and an optional fault model. All fields are primitives so the case
// round-trips through the Go fuzz corpus encoding (see Encode). Arbitrary
// values are legal — Normalize folds anything into the valid domain, so
// the fuzzer can mutate blindly.
type Case struct {
	Tasks     int    // DAG size cap (normalized into [1, 40])
	Seed      uint64 // drives DAG shape, work, data and the scenario draw
	EdgePct   int    // edge probability in percent (normalized into [0, 60])
	ZeroWork  bool   // force every third task to zero work
	BTUWork   bool   // quantize work to BTU/k divisors (billing boundaries)
	Scenario  int    // index into scenarios(), modulo its length
	Strategy  int    // index into Strategies(), modulo its length
	Fault     int    // index into fault.PresetNames(), modulo; "none" = fault-free
	FaultSeed uint64
}

// mod folds v into [0, n) with a non-negative result for negative v.
func mod(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// Normalize folds arbitrary field values into the valid domain and
// returns the canonical case. It is idempotent.
func (c Case) Normalize() Case {
	c.Tasks = 1 + mod(c.Tasks-1, 40)
	c.EdgePct = mod(c.EdgePct, 61)
	c.Scenario = mod(c.Scenario, len(scenarios()))
	c.Strategy = mod(c.Strategy, len(Strategies()))
	c.Fault = mod(c.Fault, len(fault.PresetNames()))
	return c
}

// String renders the case compactly for failure reports.
func (c Case) String() string {
	c = c.Normalize()
	return fmt.Sprintf("case{tasks: %d, seed: %d, edges: %d%%, zero: %v, btu: %v, scenario: %v, strategy: %s, fault: %s/%d}",
		c.Tasks, c.Seed, c.EdgePct, c.ZeroWork, c.BTUWork,
		scenarios()[c.Scenario], Strategies()[c.Strategy], c.FaultName(), c.FaultSeed)
}

// FaultName returns the fault preset the case selects ("none" for the
// fault-free oracle).
func (c Case) FaultName() string {
	c = c.Normalize()
	return fault.PresetNames()[c.Fault]
}

// Workflow builds the case's DAG: a seeded random graph with the case's
// mutations applied. Deterministic: equal cases yield equal workflows.
func (c Case) Workflow() *dag.Workflow {
	c = c.Normalize()
	cfg := dagtest.DefaultConfig()
	cfg.MinTasks, cfg.MaxTasks = 1, c.Tasks
	cfg.EdgeProb = float64(c.EdgePct) / 100
	w := dagtest.Random(c.Seed, cfg)
	if c.ZeroWork {
		w.SetWork(func(t dag.Task) float64 {
			if int(t.ID)%3 == 0 {
				return 0
			}
			return t.Work
		})
	}
	if c.BTUWork {
		// Work quantized to exact BTU divisors: k tasks of BTU/k seconds
		// sum to a float that lands on (or one ulp around) a billing
		// boundary — the inputs that historically over-billed one BTU.
		w.SetWork(func(t dag.Task) float64 {
			return cloud.BTU / float64(1+int(t.ID)%5)
		})
	}
	return w
}

// schedule builds the case's schedule: scenario applied, strategy run.
func (c Case) schedule() (*plan.Schedule, error) {
	c = c.Normalize()
	w := scenarios()[c.Scenario].Apply(c.Workflow(), c.Seed)
	name := Strategies()[c.Strategy]
	switch name {
	case StrategyXRegion:
		return xregion(w), nil
	case StrategyHeldTail:
		return heldtail(w, c.Seed)
	case StrategySpotSec:
		return spotsec(w, c.Seed), nil
	case StrategyWarmMin:
		return warmmin(w, c.Seed)
	}
	alg, err := sched.ByName(name)
	if err != nil {
		return nil, err
	}
	return alg.Schedule(w, sched.DefaultOptions())
}

// xregion schedules one VM per task, cycling through every region of
// Table II — the federation case with inter-region transfer pricing that
// no catalog strategy exercises.
func xregion(w *dag.Workflow) *plan.Schedule {
	b := plan.NewBuilder(w, cloud.NewPlatform(), cloud.USEastVirginia)
	regions := cloud.Regions()
	types := []cloud.InstanceType{cloud.Small, cloud.Medium, cloud.Large}
	for i, t := range w.TopoOrder() {
		vm := b.NewVMIn(types[i%len(types)], regions[i%len(regions)])
		b.PlaceOn(t, vm)
	}
	return b.Done()
}

// heldtail runs the baseline and then mutates the plan the way a
// speculative provisioner would: the first lease is held one BTU past its
// last slot and one held-but-empty reservation is appended.
func heldtail(w *dag.Workflow, seed uint64) (*plan.Schedule, error) {
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed)
	if len(s.VMs) > 0 {
		vm := s.VMs[r.Intn(len(s.VMs))]
		vm.Held = vm.Span() + cloud.BTU*r.Range(0.1, 1.5)
	}
	s.VMs = append(s.VMs, &plan.VM{
		ID: plan.VMID(len(s.VMs)), Type: cloud.Small,
		Region: cloud.USEastVirginia, Held: r.Range(1, 2*cloud.BTU),
	})
	return s, nil
}

// spotMarket returns the seeded spot/per-second model spotsec rents
// under: a volatile synthetic price trace and uniform cold starts, all
// derived from the case seed so equal cases bill identically.
func spotMarket(seed uint64) *market.Model {
	return &market.Model{
		Market:       market.Spot,
		Gran:         market.PerSecond,
		SpotDiscount: 0.25,
		Trace:        market.Synthetic(seed, 48, 900, 0.25),
		Cold:         market.ColdStart{Dist: "uniform", Min: 10, Max: 90},
		Seed:         seed,
	}
}

// spotsec schedules one VM per task under per-second spot billing — the
// market analogue of xregion: a synthetic placement no catalog strategy
// produces, reaching trace-priced leases with per-task cold starts.
func spotsec(w *dag.Workflow, seed uint64) *plan.Schedule {
	b := plan.NewBuilder(w, cloud.NewPlatform(), cloud.USEastVirginia)
	b.SetMarket(spotMarket(seed))
	types := []cloud.InstanceType{cloud.Small, cloud.Medium, cloud.Large}
	for i, t := range w.TopoOrder() {
		vm := b.NewVMIn(types[i%len(types)], cloud.USEastVirginia)
		b.PlaceOn(t, vm)
	}
	return b.Done()
}

// warmmin runs the baseline under per-minute billing with a three-VM warm
// pool and a long fixed cold start, so some leases anchor warm at t=0 and
// the rest pay the cold start on their first slot.
func warmmin(w *dag.Workflow, seed uint64) (*plan.Schedule, error) {
	opts := sched.DefaultOptions()
	opts.Market = &market.Model{
		Gran:     market.PerMinute,
		Cold:     market.ColdStart{Dist: "fixed", Mean: 120},
		WarmPool: 3,
		Seed:     seed,
	}
	return sched.Baseline().Schedule(w, opts)
}

// Run executes the case through the differential harness and returns the
// first divergence, or nil when planner, simulator and event-stream
// accounting agree. Fault-free cases run the PlanSim oracle; faulty cases
// run FaultReplay and additionally cross-check metrics.ReliabilityOf
// against the event-derived ledger.
func (c Case) Run() error {
	c = c.Normalize()
	s, err := c.schedule()
	if err != nil {
		return fmt.Errorf("fuzzcheck: %v: schedule: %w", c, err)
	}
	if c.FaultName() == "none" {
		if err := validate.PlanSim(s); err != nil {
			return fmt.Errorf("fuzzcheck: %v: %w", c, err)
		}
		return nil
	}
	fc, err := fault.Preset(c.FaultName())
	if err != nil {
		return err
	}
	fc.Seed = c.FaultSeed
	res, acc, err := validate.FaultReplay(s, &fc)
	if err != nil {
		return fmt.Errorf("fuzzcheck: %v: %w", c, err)
	}
	rel := metrics.ReliabilityOf(s, res)
	n := s.Workflow.Len()
	wantFrac := 1.0
	if n > 0 {
		wantFrac = float64(acc.CompletedTasks) / float64(n)
	}
	if !validate.Close(rel.CompletedFraction, wantFrac) {
		return fmt.Errorf("fuzzcheck: %v: completed fraction: metrics %v, events %v",
			c, rel.CompletedFraction, wantFrac)
	}
	// Re-derive the wasted-BTU-seconds premium from the event ledger alone
	// and cross-check the metrics-layer accounting.
	wasted := acc.IdleSeconds + acc.WastedSeconds - s.IdleTime()
	if !res.Completed {
		wasted = acc.IdleSeconds + acc.WastedSeconds + acc.UsefulSeconds
	}
	if !validate.Close(rel.WastedBTUSeconds, wasted) {
		return fmt.Errorf("fuzzcheck: %v: wasted BTU-seconds: metrics %v, events %v",
			c, rel.WastedBTUSeconds, wasted)
	}
	if !validate.Close(rel.AddedCost, acc.RentalCost-s.RentalCost()) {
		return fmt.Errorf("fuzzcheck: %v: added cost: metrics %v, events %v",
			c, rel.AddedCost, acc.RentalCost-s.RentalCost())
	}
	if rel.VMCrashes != acc.Crashes || rel.TaskFailures != acc.Failures ||
		rel.Retries != acc.Retries || rel.Resubmits != acc.Resubmits {
		return fmt.Errorf("fuzzcheck: %v: fault counters: metrics %+v, events %+v", c, rel, acc)
	}
	if rel.SpotPreemptions != acc.Preempts || rel.FallbackVMs != acc.FallbackVMs {
		return fmt.Errorf("fuzzcheck: %v: market counters: metrics preempts %d fallbacks %d, events preempts %d fallbacks %d",
			c, rel.SpotPreemptions, rel.FallbackVMs, acc.Preempts, acc.FallbackVMs)
	}
	if !validate.Close(rel.FallbackPremium, acc.FallbackPremium) {
		return fmt.Errorf("fuzzcheck: %v: fallback premium: metrics %v, events %v",
			c, rel.FallbackPremium, acc.FallbackPremium)
	}
	if !validate.Close(rel.WarmIdleSeconds, acc.WarmIdleSeconds) {
		return fmt.Errorf("fuzzcheck: %v: warm idle: metrics %v, events %v",
			c, rel.WarmIdleSeconds, acc.WarmIdleSeconds)
	}
	return nil
}

// Random draws a case from the given stream position. Same index, same
// case — wffuzz workers can partition the stream deterministically.
func Random(sweepSeed uint64, i int) Case {
	r := stats.NewRNG(fault.CellSeed(sweepSeed, fmt.Sprint(i)))
	return Case{
		Tasks:     1 + r.Intn(40),
		Seed:      r.Uint64(),
		EdgePct:   r.Intn(61),
		ZeroWork:  r.Intn(4) == 0,
		BTUWork:   r.Intn(4) == 0,
		Scenario:  r.Intn(len(scenarios())),
		Strategy:  r.Intn(len(Strategies())),
		Fault:     r.Intn(len(fault.PresetNames())),
		FaultSeed: uint64(r.Intn(1 << 16)),
	}.Normalize()
}

// RandomMarket draws a case from a market-focused stream: the strategy is
// always one of the market synthetics or hedging provisioners, and the
// fault preset is drawn from {none, preempt-mild, preempt-storm} so spot
// preemption, fallback and warm-idle accounting dominate the sweep. Like
// Random, same (seed, index) yields the same case.
func RandomMarket(sweepSeed uint64, i int) Case {
	r := stats.NewRNG(fault.CellSeed(sweepSeed, "market", fmt.Sprint(i)))
	strats := marketStrategies()
	faults := []int{faultIndex("none"), faultIndex("preempt-mild"), faultIndex("preempt-storm")}
	return Case{
		Tasks:     1 + r.Intn(40),
		Seed:      r.Uint64(),
		EdgePct:   r.Intn(61),
		ZeroWork:  r.Intn(4) == 0,
		BTUWork:   r.Intn(4) == 0,
		Scenario:  r.Intn(len(scenarios())),
		Strategy:  strats[r.Intn(len(strats))],
		Fault:     faults[r.Intn(len(faults))],
		FaultSeed: uint64(r.Intn(1 << 16)),
	}.Normalize()
}

// Shrink greedily reduces a failing case while it keeps failing, and
// returns the smallest reproducer found. fails must be deterministic.
func Shrink(c Case, fails func(Case) bool) Case {
	c = c.Normalize()
	if !fails(c) {
		return c // not reproducible; nothing to shrink
	}
	improved := true
	for improved {
		improved = false
		for _, cand := range shrinkSteps(c) {
			cand = cand.Normalize()
			if cand != c && fails(cand) {
				c = cand
				improved = true
				break
			}
		}
	}
	return c
}

// shrinkSteps proposes one-step reductions of a case, most aggressive
// first.
func shrinkSteps(c Case) []Case {
	var out []Case
	for _, t := range []int{1, c.Tasks / 2, c.Tasks - 1} {
		if t >= 1 && t < c.Tasks {
			d := c
			d.Tasks = t
			out = append(out, d)
		}
	}
	if c.EdgePct > 0 {
		d := c
		d.EdgePct = 0
		out = append(out, d)
		h := c
		h.EdgePct = c.EdgePct / 2
		out = append(out, h)
	}
	for _, flag := range []func(*Case){
		func(d *Case) { d.ZeroWork = false },
		func(d *Case) { d.BTUWork = false },
	} {
		d := c
		flag(&d)
		out = append(out, d)
	}
	if c.Scenario != 0 { // scenario 0 is AsIs
		d := c
		d.Scenario = 0
		out = append(out, d)
	}
	if c.FaultName() != "none" {
		d := c
		d.Fault = faultIndex("none")
		d.FaultSeed = 0
		out = append(out, d)
	}
	if c.Seed != 0 {
		d := c
		d.Seed = c.Seed / 2
		out = append(out, d)
	}
	return out
}

// faultIndex maps a preset name back to its index in fault.PresetNames.
func faultIndex(name string) int {
	for i, n := range fault.PresetNames() {
		if n == name {
			return i
		}
	}
	panic(fmt.Sprintf("fuzzcheck: unknown fault preset %q", name))
}

// Encode renders the case in the native Go fuzz corpus format, field
// order matching the FuzzSchedule / FuzzSimAgree signatures. The output is a valid
// `go test -fuzz` corpus file, so shrunk reproducers emitted by
// cmd/wffuzz drop straight into testdata/fuzz/.
func Encode(c Case) []byte {
	c = c.Normalize()
	return []byte(fmt.Sprintf("go test fuzz v1\nint(%d)\nuint64(%d)\nint(%d)\nbool(%v)\nbool(%v)\nint(%d)\nint(%d)\nint(%d)\nuint64(%d)\n",
		c.Tasks, c.Seed, c.EdgePct, c.ZeroWork, c.BTUWork,
		c.Scenario, c.Strategy, c.Fault, c.FaultSeed))
}
