package fuzzcheck

import (
	"errors"
	"fmt"
	"reflect"

	"repro/internal/cloud"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/ndwf"
	"repro/internal/sched"
	"repro/internal/sla"
	"repro/internal/stats"
)

// SLACase is one input of the SLA-bound property harness: a recipe for a
// random non-deterministic template, a deadline placed relative to the
// template's certain minimum makespan, and a sampling budget. Like Case,
// every field is a primitive so the tuple round-trips through the native
// fuzz corpus encoding, and Normalize folds arbitrary mutations into the
// valid domain.
type SLACase struct {
	Seed        uint64 // template shape, work draws and sampling seed
	Blocks      int    // structural budget (normalized into [1, 12])
	DeadlinePct int    // deadline as % of the fastest-type analytic minimum (normalized into [40, 400])
	Samples     int    // Monte-Carlo instances per candidate (normalized into [3, 12])
	StratOff    int    // rotation offset into the strategy portfolio
}

// slaPortfolioSize bounds the candidates per case so one property check
// stays cheap enough to fuzz.
const slaPortfolioSize = 5

// Normalize folds arbitrary field values into the valid domain. It is
// idempotent.
func (c SLACase) Normalize() SLACase {
	c.Blocks = 1 + mod(c.Blocks-1, 12)
	c.DeadlinePct = 40 + mod(c.DeadlinePct-40, 361)
	c.Samples = 3 + mod(c.Samples-3, 10)
	c.StratOff = mod(c.StratOff, len(frontier.Portfolio(nil, nil)))
	return c
}

// String renders the case compactly for failure reports.
func (c SLACase) String() string {
	c = c.Normalize()
	return fmt.Sprintf("slacase{seed: %d, blocks: %d, deadline: %d%%, samples: %d, off: %d}",
		c.Seed, c.Blocks, c.DeadlinePct, c.Samples, c.StratOff)
}

// RandomTemplate builds a seeded random ndwf template with at most blocks
// structural blocks: tasks with occasional zero work, nested Seq/Par
// groups, Xor branches with random probability splits and truncated
// geometric Loops. Deterministic — equal arguments yield equal templates —
// and always valid.
func RandomTemplate(seed uint64, blocks int) ndwf.Template {
	r := stats.NewRNG(seed)
	budget := blocks
	root := randomBlock(r, &budget, 0)
	return ndwf.Template{Name: fmt.Sprintf("fuzz-%d", seed), Root: root}
}

// randomBlock consumes one unit of budget and recurses while budget
// remains; depth caps nesting so pathological towers cannot form.
func randomBlock(r *stats.RNG, budget *int, depth int) ndwf.Block {
	*budget--
	if *budget <= 0 || depth >= 3 {
		return randomTask(r)
	}
	switch r.Intn(6) {
	case 0, 1: // group: sequential or parallel
		n := 2 + r.Intn(3)
		kids := make([]ndwf.Block, 0, n)
		for i := 0; i < n && *budget > 0; i++ {
			kids = append(kids, randomBlock(r, budget, depth+1))
		}
		if len(kids) == 0 {
			return randomTask(r)
		}
		if r.Intn(2) == 0 {
			return ndwf.Seq(kids)
		}
		return ndwf.Par(kids)
	case 2: // exclusive choice with a random probability split
		n := 2 + r.Intn(2)
		branches := make([]ndwf.Block, 0, n)
		probs := make([]float64, 0, n)
		total := 0.0
		for i := 0; i < n; i++ {
			branches = append(branches, randomBlock(r, budget, depth+1))
			p := r.Range(0.1, 1)
			probs = append(probs, p)
			total += p
		}
		for i := range probs {
			probs[i] /= total
		}
		return ndwf.Xor{Branches: branches, Probs: probs}
	case 3: // truncated geometric loop
		return ndwf.Loop{
			Body:   randomBlock(r, budget, depth+1),
			Repeat: r.Range(0, 0.85),
			Max:    1 + r.Intn(4),
		}
	default:
		return randomTask(r)
	}
}

func randomTask(r *stats.RNG) ndwf.Task {
	work := r.Range(10, 3000)
	if r.Intn(8) == 0 {
		work = 0
	}
	return ndwf.Task{
		Name: fmt.Sprintf("t%d", r.Intn(1<<20)),
		Work: work,
		Data: r.Range(0, 256),
	}
}

// Candidates returns the case's strategy slice: slaPortfolioSize names
// from the full portfolio starting at the rotation offset, so the stream
// covers every strategy while one case stays cheap.
func (c SLACase) Candidates() []frontier.Candidate {
	c = c.Normalize()
	all := frontier.Portfolio(nil, nil)
	out := make([]frontier.Candidate, 0, slaPortfolioSize)
	for i := 0; i < slaPortfolioSize; i++ {
		out = append(out, all[(c.StratOff+i)%len(all)])
	}
	return out
}

// Deadline derives the case's deadline: DeadlinePct percent of the
// template's certain minimum makespan at the fastest instance type. Below
// 100% every candidate is prunable; above it the portfolio splits into
// pruned and sampled candidates — both sides of the property get traffic.
func (c SLACase) Deadline(t ndwf.Template) (float64, error) {
	c = c.Normalize()
	types := cloud.InstanceTypes()
	b, err := sla.AnalyticBound(t, types[len(types)-1])
	if err != nil {
		return 0, err
	}
	d := b.MinMakespan * float64(c.DeadlinePct) / 100
	if d <= 0 {
		d = 1 // all-zero-work template: any positive deadline is met
	}
	return d, nil
}

// CheckSLABound runs the case's portfolio search twice — analytic prune
// enabled and disabled — and verifies the bound's safety contract:
//
//   - a pruned candidate is never one the Monte-Carlo pass would have
//     accepted: sampled without the bound, its meet probability is zero
//     and no sampled makespan beats the bound;
//   - every sampled candidate's result is bit-identical in both runs, so
//     pruning changes cost, never answers;
//   - the verdict is identical: target-met/missed always agrees, and the
//     selected candidate matches whenever the target is met.
func CheckSLABound(c SLACase) error {
	c = c.Normalize()
	tpl := RandomTemplate(c.Seed, c.Blocks)
	if err := tpl.Validate(); err != nil {
		return fmt.Errorf("fuzzcheck: %v: invalid template: %w", c, err)
	}
	deadline, err := c.Deadline(tpl)
	if err != nil {
		return fmt.Errorf("fuzzcheck: %v: %w", c, err)
	}
	cfg := sla.SearchConfig{
		Deadline:   deadline,
		Target:     0.9,
		Config:     sla.Config{Samples: c.Samples, Seed: c.Seed, Workers: 1},
		Candidates: c.Candidates(),
		Opts:       sched.DefaultOptions(),
	}
	bounded, errB := sla.Search(tpl, cfg)
	cfg.NoBound = true
	full, errF := sla.Search(tpl, cfg)
	if (errB != nil) != (errF != nil) ||
		(errB != nil && errors.Is(errB, sla.ErrNoStrategyMeets) != errors.Is(errF, sla.ErrNoStrategyMeets)) {
		return fmt.Errorf("fuzzcheck: %v: verdict differs: bounded %v, unbounded %v", c, errB, errF)
	}
	if errB != nil && !errors.Is(errB, sla.ErrNoStrategyMeets) {
		return nil // both searches failed identically before sampling
	}

	byKey := make(map[string]*sla.Result, len(full.Results))
	for i := range full.Results {
		r := &full.Results[i]
		byKey[r.Strategy+"/"+r.Market] = r
	}
	for _, p := range bounded.Pruned {
		r := byKey[p.Strategy+"/"+p.Market]
		if r == nil {
			return fmt.Errorf("fuzzcheck: %v: pruned %s/%s missing from unbounded run",
				c, p.Strategy, p.Market)
		}
		if r.MeetProbability != 0 {
			return fmt.Errorf("fuzzcheck: %v: pruned %s/%s meets the deadline with p = %v",
				c, p.Strategy, p.Market, r.MeetProbability)
		}
		if r.Makespan.Min < p.Bound.MinMakespan*(1-1e-9) {
			return fmt.Errorf("fuzzcheck: %v: %s/%s sampled makespan %v beats bound %v",
				c, p.Strategy, p.Market, r.Makespan.Min, p.Bound.MinMakespan)
		}
	}
	for i := range bounded.Results {
		r := &bounded.Results[i]
		u := byKey[r.Strategy+"/"+r.Market]
		if u == nil {
			return fmt.Errorf("fuzzcheck: %v: sampled %s/%s missing from unbounded run",
				c, r.Strategy, r.Market)
		}
		if !reflect.DeepEqual(*r, *u) {
			return fmt.Errorf("fuzzcheck: %v: %s/%s result differs with pruning on",
				c, r.Strategy, r.Market)
		}
		if r.Bound != nil && r.Makespan.Min < r.Bound.MinMakespan*(1-1e-9) {
			return fmt.Errorf("fuzzcheck: %v: %s/%s sampled makespan %v beats bound %v",
				c, r.Strategy, r.Market, r.Makespan.Min, r.Bound.MinMakespan)
		}
	}
	// The selected candidate must match whenever the target is met. Under
	// ErrNoStrategyMeets both runs agree nothing qualifies; the best-effort
	// pointer may then legitimately differ (a pruned candidate has no
	// samples to be "closest" with), so it is exempt.
	if errB == nil {
		if bounded.Best == nil || full.Best == nil ||
			bounded.Best.Strategy != full.Best.Strategy || bounded.Best.Market != full.Best.Market {
			return fmt.Errorf("fuzzcheck: %v: best differs: bounded %v, unbounded %v",
				c, bounded.Best, full.Best)
		}
	}
	if bounded.Considered != full.Considered {
		return fmt.Errorf("fuzzcheck: %v: considered %d vs %d",
			c, bounded.Considered, full.Considered)
	}
	return nil
}

// RandomSLA draws an SLA case from the given stream position —
// deterministic like Random, so divergences reproduce by index.
func RandomSLA(sweepSeed uint64, i int) SLACase {
	r := stats.NewRNG(fault.CellSeed(sweepSeed, "sla", fmt.Sprint(i)))
	return SLACase{
		Seed:        r.Uint64(),
		Blocks:      1 + r.Intn(12),
		DeadlinePct: 40 + r.Intn(361),
		Samples:     3 + r.Intn(10),
		StratOff:    r.Intn(len(frontier.Portfolio(nil, nil))),
	}.Normalize()
}
