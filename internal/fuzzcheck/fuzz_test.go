package fuzzcheck

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// caseFrom assembles a Case from the primitive tuple of the fuzz-target
// signatures (the same order Encode writes).
func caseFrom(tasks int, seed uint64, edgePct int, zeroWork, btuWork bool,
	scenario, strategy, faultIdx int, faultSeed uint64) Case {
	return Case{
		Tasks: tasks, Seed: seed, EdgePct: edgePct,
		ZeroWork: zeroWork, BTUWork: btuWork,
		Scenario: scenario, Strategy: strategy,
		Fault: faultIdx, FaultSeed: faultSeed,
	}.Normalize()
}

// strategyIndex resolves a strategy name to its index in Strategies().
func strategyIndex(t testing.TB, name string) int {
	t.Helper()
	for i, n := range Strategies() {
		if n == name {
			return i
		}
	}
	t.Fatalf("unknown strategy %q", name)
	return -1
}

// seedCorpus returns the golden minimal reproducers, keyed by corpus file
// name. Each covers an edge class the harness historically got wrong or
// the catalog cannot reach: held leases, zero-work tasks, single-task
// DAGs, cross-region transfers, exact-BTU-boundary work, and faulty
// replays under each recovery mode.
func seedCorpus(t testing.TB) map[string]Case {
	return map[string]Case{
		"held-lease": {Tasks: 3, Seed: 7, EdgePct: 30,
			Strategy: strategyIndex(t, StrategyHeldTail), Fault: faultIndex("none")},
		"zero-work": {Tasks: 6, Seed: 11, EdgePct: 25, ZeroWork: true,
			Strategy: strategyIndex(t, "OneVMperTask-s"), Fault: faultIndex("none")},
		"single-task": {Tasks: 1, Seed: 1, Scenario: 2, // Best case
			Strategy: 0, Fault: faultIndex("none")},
		"xregion": {Tasks: 8, Seed: 13, EdgePct: 35, Scenario: 1, // Pareto
			Strategy: strategyIndex(t, StrategyXRegion), Fault: faultIndex("none")},
		"btu-boundary": {Tasks: 22, Seed: 5, EdgePct: 10, BTUWork: true,
			Strategy: strategyIndex(t, "AllParExceed-s"), Fault: faultIndex("none")},
		"calm-retry": {Tasks: 10, Seed: 3, EdgePct: 20, Scenario: 1,
			Strategy: strategyIndex(t, "OneVMperTask-s"), Fault: faultIndex("calm"), FaultSeed: 9},
		"hostile-resubmit": {Tasks: 12, Seed: 21, EdgePct: 30, Scenario: 3, // Worst case
			Strategy: strategyIndex(t, "AllParNotExceed-m"), Fault: faultIndex("hostile"), FaultSeed: 4},
		"spot-seconds": {Tasks: 9, Seed: 17, EdgePct: 25,
			Strategy: strategyIndex(t, StrategySpotSec), Fault: faultIndex("none")},
		"warm-minutes": {Tasks: 14, Seed: 29, EdgePct: 20, BTUWork: true,
			Strategy: strategyIndex(t, StrategyWarmMin), Fault: faultIndex("none")},
		"spot-preempted": {Tasks: 11, Seed: 23, EdgePct: 30, Scenario: 1,
			Strategy: strategyIndex(t, StrategySpotSec), Fault: faultIndex("preempt-mild"), FaultSeed: 6},
		"fallback-storm": {Tasks: 13, Seed: 19, EdgePct: 35,
			Strategy: strategyIndex(t, "SpotFallback"), Fault: faultIndex("preempt-storm"), FaultSeed: 8},
		"warm-crash": {Tasks: 10, Seed: 31, EdgePct: 25,
			Strategy: strategyIndex(t, "WarmPool4"), Fault: faultIndex("calm"), FaultSeed: 5},
	}
}

// corpusDir returns the fuzz-target directory a case belongs to.
func corpusDir(c Case) string {
	if c.FaultName() == "none" {
		return "FuzzSchedule"
	}
	return "FuzzSimAgree"
}

// TestSeedCorpusPasses replays every golden reproducer deterministically.
// A failure here is a regression in the planner, the simulator or the
// accounting — exactly the divergences the corpus was minimized to pin.
func TestSeedCorpusPasses(t *testing.T) {
	for name, c := range seedCorpus(t) {
		if err := c.Run(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSeedCorpusCommitted checks that each golden case is committed under
// testdata/fuzz/ in the native corpus encoding, so `go test` (and
// `go test -fuzz`) replay the same inputs this suite does. Regenerate
// with REGEN_CORPUS=1 after changing the catalog or the Case layout.
func TestSeedCorpusCommitted(t *testing.T) {
	for name, c := range seedCorpus(t) {
		path := filepath.Join("testdata", "fuzz", corpusDir(c), name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (run REGEN_CORPUS=1 go test ./internal/fuzzcheck/ -run TestRegenCorpus)", name, err)
			continue
		}
		if !bytes.Equal(got, Encode(c)) {
			t.Errorf("%s: committed corpus differs from Encode; regenerate with REGEN_CORPUS=1", name)
		}
	}
}

// TestRegenCorpus rewrites the committed corpus files from seedCorpus.
// Guarded by REGEN_CORPUS so a plain test run never writes.
func TestRegenCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") == "" {
		t.Skip("set REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	for name, c := range seedCorpus(t) {
		dir := filepath.Join("testdata", "fuzz", corpusDir(c))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), Encode(c), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomCasesPass(t *testing.T) {
	// A deterministic slice of the wffuzz stream; the CLI runs the same
	// cases, so a divergence found there reproduces here by index.
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		c := Random(1, i)
		if err := c.Run(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRandomMarketCasesPass(t *testing.T) {
	// The market-focused stream behind `wffuzz -market`: every case rents
	// under market lease terms and most run a preemption preset.
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		c := RandomMarket(1, i)
		if err := c.Run(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRandomMarketDrawsMarketStrategies(t *testing.T) {
	allowed := make(map[int]bool)
	for _, i := range marketStrategies() {
		allowed[i] = true
	}
	if len(allowed) < 4 {
		t.Fatalf("marketStrategies() has %d entries, want >= 4", len(allowed))
	}
	for i := 0; i < 100; i++ {
		c := RandomMarket(7, i)
		if !allowed[c.Strategy] {
			t.Fatalf("case %d drew non-market strategy %s", i, Strategies()[c.Strategy])
		}
		if name := c.FaultName(); name != "none" && name != "preempt-mild" && name != "preempt-storm" {
			t.Fatalf("case %d drew fault %q", i, name)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	for i := 0; i < 200; i++ {
		c := Random(99, i)
		raw := Case{Tasks: -17 * i, Seed: uint64(i), EdgePct: 1000 - i,
			Scenario: -i, Strategy: 3 * i, Fault: i, FaultSeed: 1}
		n1 := raw.Normalize()
		if n2 := n1.Normalize(); n1 != n2 {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", n1, n2)
		}
		if c != c.Normalize() {
			t.Fatalf("Random returned non-canonical case %+v", c)
		}
	}
}

func TestShrinkFindsMinimalTaskCount(t *testing.T) {
	// A synthetic predicate failing iff Tasks >= 7 and the fault preset is
	// active: Shrink must walk down to exactly 7 tasks and keep the fault.
	fails := func(c Case) bool {
		c = c.Normalize()
		return c.Tasks >= 7 && c.FaultName() != "none"
	}
	start := Case{Tasks: 33, Seed: 12345, EdgePct: 44, ZeroWork: true,
		BTUWork: true, Scenario: 4, Strategy: 9, Fault: faultIndex("hostile"),
		FaultSeed: 77}.Normalize()
	min := Shrink(start, fails)
	if min.Tasks != 7 {
		t.Errorf("shrunk to %d tasks, want 7", min.Tasks)
	}
	if min.FaultName() == "none" {
		t.Error("shrink dropped the fault the failure depends on")
	}
	if min.ZeroWork || min.BTUWork || min.EdgePct != 0 || min.Scenario != 0 {
		t.Errorf("irrelevant features survived shrinking: %+v", min)
	}
	if !fails(min) {
		t.Error("shrunk case no longer fails")
	}
}

func TestScenarioPoolMatchesWorkload(t *testing.T) {
	// The corpus addresses scenarios by index; pin the pool's order.
	want := []workload.Scenario{workload.AsIs, workload.Pareto,
		workload.BestCase, workload.WorstCase, workload.DataHeavy}
	got := scenarios()
	if len(got) != len(want) {
		t.Fatalf("scenario pool has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenarios()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// FuzzSchedule is the fault-free differential fuzz target: any input the
// fuzzer invents is normalized into a valid case and must pass the
// plan↔sim oracle. The committed corpus under testdata/fuzz/FuzzSchedule
// seeds it and doubles as a regression suite on plain `go test`.
func FuzzSchedule(f *testing.F) {
	for _, c := range seedCorpus(f) {
		if c.FaultName() != "none" {
			continue
		}
		c = c.Normalize()
		f.Add(c.Tasks, c.Seed, c.EdgePct, c.ZeroWork, c.BTUWork,
			c.Scenario, c.Strategy, c.Fault, c.FaultSeed)
	}
	none := faultIndex("none")
	f.Fuzz(func(t *testing.T, tasks int, seed uint64, edgePct int,
		zeroWork, btuWork bool, scenario, strategy, faultIdx int, faultSeed uint64) {
		c := caseFrom(tasks, seed, edgePct, zeroWork, btuWork, scenario, strategy, none, 0)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSimAgree is the fault-mode target: the case always runs with an
// active fault preset, exercising crash billing, retry/resubmit recovery
// and the reliability cross-check.
func FuzzSimAgree(f *testing.F) {
	for _, c := range seedCorpus(f) {
		if c.FaultName() == "none" {
			continue
		}
		c = c.Normalize()
		f.Add(c.Tasks, c.Seed, c.EdgePct, c.ZeroWork, c.BTUWork,
			c.Scenario, c.Strategy, c.Fault, c.FaultSeed)
	}
	f.Fuzz(func(t *testing.T, tasks int, seed uint64, edgePct int,
		zeroWork, btuWork bool, scenario, strategy, faultIdx int, faultSeed uint64) {
		c := caseFrom(tasks, seed, edgePct, zeroWork, btuWork, scenario, strategy, faultIdx, faultSeed)
		if c.FaultName() == "none" {
			c.Fault = faultIndex("calm")
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
}
