package fuzzcheck

import (
	"testing"

	"repro/internal/sched"
)

func TestRandomTemplatesValidAndDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		tpl := RandomTemplate(seed, 1+int(seed)%12)
		if err := tpl.Validate(); err != nil {
			t.Errorf("seed %d: invalid template: %v", seed, err)
		}
		again := RandomTemplate(seed, 1+int(seed)%12)
		w1, err1 := tpl.Sample(seed)
		w2, err2 := again.Sample(seed)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: sample: %v, %v", seed, err1, err2)
		}
		if w1.Len() != w2.Len() {
			t.Errorf("seed %d: template generation not deterministic", seed)
		}
	}
}

func TestSLACaseNormalizeIdempotent(t *testing.T) {
	for i := 0; i < 100; i++ {
		raw := SLACase{Seed: uint64(i), Blocks: -31 * i, DeadlinePct: 10000 - 17*i,
			Samples: -i, StratOff: 91 * i}
		n1 := raw.Normalize()
		if n2 := n1.Normalize(); n1 != n2 {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", n1, n2)
		}
		if n1.Blocks < 1 || n1.Blocks > 12 || n1.DeadlinePct < 40 || n1.DeadlinePct > 400 ||
			n1.Samples < 3 || n1.Samples > 12 {
			t.Fatalf("normalized case outside domain: %+v", n1)
		}
		c := RandomSLA(3, i)
		if c != c.Normalize() {
			t.Fatalf("RandomSLA returned non-canonical case %+v", c)
		}
	}
}

func TestSLACaseCandidatesResolve(t *testing.T) {
	c := SLACase{StratOff: 19}.Normalize()
	cands := c.Candidates()
	if len(cands) != slaPortfolioSize {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, cand := range cands {
		if _, err := sched.ByName(cand.Strategy); err != nil {
			t.Errorf("candidate %q: %v", cand.Strategy, err)
		}
	}
}

// TestSLABoundProperty replays a deterministic slice of the RandomSLA
// stream through the prune-safety property — the regression counterpart
// of the FuzzSLABound target.
func TestSLABoundProperty(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	for i := 0; i < n; i++ {
		if err := CheckSLABound(RandomSLA(1, i)); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

// TestSLABoundPruneRegimes pins both sides of the deadline knob: far
// below 100% of the certain minimum the whole portfolio is pruned; far
// above it nothing is.
func TestSLABoundPruneRegimes(t *testing.T) {
	low := SLACase{Seed: 7, Blocks: 8, DeadlinePct: 40, Samples: 4}.Normalize()
	if err := CheckSLABound(low); err != nil {
		t.Errorf("low-deadline case: %v", err)
	}
	high := SLACase{Seed: 7, Blocks: 8, DeadlinePct: 400, Samples: 4}.Normalize()
	if err := CheckSLABound(high); err != nil {
		t.Errorf("high-deadline case: %v", err)
	}
}

// FuzzSLABound is the native target for the prune-safety property: any
// mutated tuple normalizes into a valid SLA case whose bounded and
// unbounded portfolio searches must agree exactly.
func FuzzSLABound(f *testing.F) {
	for i := 0; i < 8; i++ {
		c := RandomSLA(1, i)
		f.Add(c.Seed, c.Blocks, c.DeadlinePct, c.Samples, c.StratOff)
	}
	// Hand-picked regime seeds: certain-prune, no-prune, zero-work heavy.
	f.Add(uint64(7), 8, 40, 4, 0)
	f.Add(uint64(7), 8, 400, 4, 7)
	f.Add(uint64(104729), 12, 100, 3, 13)
	f.Fuzz(func(t *testing.T, seed uint64, blocks, deadlinePct, samples, stratOff int) {
		c := SLACase{Seed: seed, Blocks: blocks, DeadlinePct: deadlinePct,
			Samples: samples, StratOff: stratOff}.Normalize()
		if err := CheckSLABound(c); err != nil {
			t.Fatal(err)
		}
	})
}
