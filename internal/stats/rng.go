// Package stats provides the statistical substrate for the workflow
// scheduling simulator: deterministic random number generation, the Pareto
// distribution used by the paper's workload model (Feitelson-style execution
// times), empirical CDFs, histograms and summary statistics.
//
// Everything in this package is deterministic given an explicit seed so that
// the full experiment sweep is reproducible bit-for-bit.
package stats

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). It is intentionally independent from math/rand so that
// results are stable across Go releases.
//
// The zero value is a valid generator seeded with 0; use NewRNG to seed it
// explicitly.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits, the standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Split derives an independent generator from the current stream. The parent
// stream advances by one value. Splitting is used to give each workflow task
// its own stream so that adding tasks does not perturb earlier draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Shuffle pseudo-randomly permutes the first n elements using swap, in the
// manner of rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
