package stats

import (
	"fmt"
	"math"
)

// Pareto is a Pareto (type I) distribution with shape alpha and scale xm
// (the minimum value). The paper's workload model uses shape 2.0 for task
// execution times and shape 1.3 for task data sizes, both with scale 500
// (Feitelson's analytic runtime model, paper Sect. IV-B and Fig. 3).
type Pareto struct {
	Alpha float64 // shape (> 0)
	Xm    float64 // scale / minimum (> 0)
}

// NewPareto returns a Pareto distribution and validates its parameters.
func NewPareto(alpha, xm float64) (Pareto, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("stats: invalid Pareto shape %v", alpha)
	}
	if xm <= 0 || math.IsNaN(xm) || math.IsInf(xm, 0) {
		return Pareto{}, fmt.Errorf("stats: invalid Pareto scale %v", xm)
	}
	return Pareto{Alpha: alpha, Xm: xm}, nil
}

// Sample draws one value using inverse-transform sampling.
func (p Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	// Guard against u == 0 mapping to +Inf for alpha <= 1 streams.
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(1-u, 1/p.Alpha)
}

// SampleN draws n values.
func (p Pareto) SampleN(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sample(r)
	}
	return out
}

// CDF returns P(X <= x).
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns the smallest x with CDF(x) >= q, for q in [0, 1).
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Xm
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean returns the distribution mean, or +Inf when alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Var returns the distribution variance, or +Inf when alpha <= 2.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}
