package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Median float64
	P90    float64
	P99    float64
	Sum    float64
}

// Summarize computes descriptive statistics. A nil or empty sample returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the q-quantile (q in [0,1]) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics if the
// sample is empty.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	// Bounds-guard both ranks: float rounding in q·(n−1) must never index
	// one past the end (q just below 1) or below the start.
	if lo < 0 {
		lo = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo >= hi {
		return sorted[hi]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF. The input is copied.
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns n evenly spaced (x, F(x)) pairs spanning the sample range,
// suitable for plotting. It returns nil for an empty ECDF or n < 2.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = [2]float64{x, e.At(x)}
	}
	return pts
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples above Hi
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // float edge case at x == Hi-ulp
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded observations, including out-of-range
// ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}
