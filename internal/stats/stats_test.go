package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d distinct values seen, want 7", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// Child stream must differ from the parent continuation.
	diff := false
	for i := 0; i < 100; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split stream identical to parent stream")
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate element %d after shuffle", x)
		}
		seen[x] = true
	}
}

func TestNewParetoValidation(t *testing.T) {
	cases := []struct {
		alpha, xm float64
		ok        bool
	}{
		{2, 500, true},
		{1.3, 500, true},
		{0, 500, false},
		{-1, 500, false},
		{2, 0, false},
		{2, -5, false},
		{math.NaN(), 500, false},
		{2, math.Inf(1), false},
	}
	for _, c := range cases {
		_, err := NewPareto(c.alpha, c.xm)
		if (err == nil) != c.ok {
			t.Errorf("NewPareto(%v, %v): err = %v, want ok=%v", c.alpha, c.xm, err, c.ok)
		}
	}
}

func TestParetoSampleAboveScale(t *testing.T) {
	p := Pareto{Alpha: 2, Xm: 500}
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		x := p.Sample(r)
		if x < p.Xm {
			t.Fatalf("sample %v below scale %v", x, p.Xm)
		}
		if math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("sample not finite: %v", x)
		}
	}
}

func TestParetoSampleMean(t *testing.T) {
	// The paper's execution-time distribution: alpha=2, xm=500 -> mean 1000.
	p := Pareto{Alpha: 2, Xm: 500}
	r := NewRNG(17)
	s := Summarize(p.SampleN(r, 400000))
	want := p.Mean()
	if math.Abs(s.Mean-want)/want > 0.05 {
		t.Errorf("sample mean = %v, want ~%v", s.Mean, want)
	}
}

func TestParetoCDFQuantileRoundTrip(t *testing.T) {
	p := Pareto{Alpha: 1.3, Xm: 500}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := p.Quantile(q)
		got := p.CDF(x)
		if math.Abs(got-q) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestParetoCDFBelowScale(t *testing.T) {
	p := Pareto{Alpha: 2, Xm: 500}
	if got := p.CDF(499); got != 0 {
		t.Errorf("CDF(499) = %v, want 0", got)
	}
	if got := p.CDF(500); got != 0 {
		t.Errorf("CDF(500) = %v, want 0", got)
	}
}

func TestParetoMoments(t *testing.T) {
	if m := (Pareto{Alpha: 1, Xm: 500}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("alpha=1 mean = %v, want +Inf", m)
	}
	if v := (Pareto{Alpha: 2, Xm: 500}).Var(); !math.IsInf(v, 1) {
		t.Errorf("alpha=2 var = %v, want +Inf", v)
	}
	if v := (Pareto{Alpha: 3, Xm: 500}).Var(); math.IsInf(v, 1) || v <= 0 {
		t.Errorf("alpha=3 var = %v, want finite positive", v)
	}
}

func TestParetoEmpiricalMatchesAnalyticCDF(t *testing.T) {
	// Reproduces the shape of paper Fig. 3: the empirical CDF of the sampled
	// execution times must track the analytic Pareto CDF.
	p := Pareto{Alpha: 2, Xm: 500}
	r := NewRNG(23)
	e := NewECDF(p.SampleN(r, 100000))
	for _, x := range []float64{600, 1000, 1500, 2000, 3000, 4000} {
		if d := math.Abs(e.At(x) - p.CDF(x)); d > 0.01 {
			t.Errorf("at x=%v: |ECDF-CDF| = %v > 0.01", x, d)
		}
	}
}

func TestQuickParetoSampleNeverBelowScale(t *testing.T) {
	f := func(seed uint64, alphaRaw, xmRaw uint8) bool {
		alpha := 0.5 + float64(alphaRaw)/64.0 // [0.5, 4.5]
		xm := 1 + float64(xmRaw)*10           // [1, 2551]
		p := Pareto{Alpha: alpha, Xm: xm}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if p.Sample(r) < xm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		p := Pareto{Alpha: 2, Xm: 500}
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return p.CDF(a) <= p.CDF(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 || s.Sum != 15 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Std != 0 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestPercentileExtremes pins the bounds guard at the quantile extremes:
// q = 0 and q = 1 must hit the first and last rank exactly, never index
// out of range, for any sample size including 1.
func TestPercentileExtremes(t *testing.T) {
	samples := [][]float64{
		{7},
		{10, 20},
		{10, 20, 30, 40},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	for _, sorted := range samples {
		n := len(sorted)
		cases := []struct{ q, want float64 }{
			{0, sorted[0]},
			{0.5, Percentile(sorted, 0.5)}, // self-consistent, must not panic
			{0.99, Percentile(sorted, 0.99)},
			{1, sorted[n-1]},
			// Out-of-domain inputs clamp rather than index out of range.
			{-0.1, sorted[0]},
			{1.1, sorted[n-1]},
			// q just below 1: interpolates within the top interval.
			{math.Nextafter(1, 0), sorted[n-1]},
		}
		for _, c := range cases {
			got := Percentile(sorted, c.q)
			if math.Abs(got-c.want) > 1e-9 {
				t.Errorf("n=%d: Percentile(%v) = %v, want %v", n, c.q, got, c.want)
			}
			if got < sorted[0] || got > sorted[n-1] {
				t.Errorf("n=%d: Percentile(%v) = %v outside sample range", n, c.q, got)
			}
		}
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 4 {
		t.Errorf("x range = [%v, %v], want [1, 4]", pts[0][0], pts[4][0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Errorf("CDF points not monotone at %d", i)
		}
	}
	if (&ECDF{}).Points(5) != nil {
		t.Error("empty ECDF should yield nil points")
	}
}

func TestQuickECDFMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		e := NewECDF(xs)
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("Counts[%d] = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Range(0, 10) // mean 5
	}
	ci := BootstrapMeanCI(xs, 0.95, 2000, 1)
	if !ci.Contains(Summarize(xs).Mean) {
		t.Errorf("CI %v misses the sample mean %v", ci, Summarize(xs).Mean)
	}
	if ci.Lo > 5.5 || ci.Hi < 4.5 {
		t.Errorf("CI %v implausible for uniform(0,10)", ci)
	}
	if ci.Hi <= ci.Lo {
		t.Errorf("degenerate CI %v", ci)
	}
	// Deterministic.
	if ci2 := BootstrapMeanCI(xs, 0.95, 2000, 1); ci2 != ci {
		t.Error("bootstrap not deterministic for equal seeds")
	}
	// Wider at higher confidence.
	ci99 := BootstrapMeanCI(xs, 0.99, 2000, 1)
	if ci99.Hi-ci99.Lo <= ci.Hi-ci.Lo {
		t.Errorf("99%% CI %v not wider than 95%% %v", ci99, ci)
	}
	if ci.String() == "" || !ci.Contains((ci.Lo+ci.Hi)/2) {
		t.Error("CI helpers broken")
	}
}

func TestBootstrapMeanCIPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { BootstrapMeanCI(nil, 0.95, 100, 1) },
		"resamples": func() { BootstrapMeanCI([]float64{1}, 0.95, 0, 1) },
		"level":     func() { BootstrapMeanCI([]float64{1}, 1.5, 100, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBootstrapSingleValue(t *testing.T) {
	ci := BootstrapMeanCI([]float64{7}, 0.9, 50, 1)
	if ci.Lo != 7 || ci.Hi != 7 {
		t.Errorf("single-value CI = %v, want [7, 7]", ci)
	}
}
