package stats

import (
	"math"
	"testing"
)

func TestProbit(t *testing.T) {
	// Acklam's approximation is accurate to ~1.15e-9 relative error.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.9599639845400536},
		{0.025, -1.9599639845400536},
		{0.95, 1.6448536269514722},
		{0.999, 3.090232306167813},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		got := Probit(c.p)
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("Probit(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Probit and NormalCDF are inverses.
	for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		if got := NormalCDF(Probit(p)); math.Abs(got-p) > 1e-7 {
			t.Errorf("NormalCDF(Probit(%v)) = %v", p, got)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Probit(%v) did not panic", p)
				}
			}()
			Probit(p)
		}()
	}
}

func TestWilsonCI(t *testing.T) {
	// Reference values computed with an exact inverse-normal at the same
	// levels; the edge rows are the SLA layer's cases of interest: n = 1,
	// all-meet, none-meet.
	cases := []struct {
		name           string
		s, n           int
		level          float64
		wantLo, wantHi float64
	}{
		{"mid", 8, 10, 0.95, 0.49016247153664183, 0.9433178485456247},
		{"n1 meet", 1, 1, 0.95, 0.20654931437723745, 1},
		{"n1 miss", 0, 1, 0.95, 0, 0.7934506856227626},
		{"all meet", 10, 10, 0.95, 0.7224672001371109, 1},
		{"none meet", 0, 10, 0.95, 0, 0.27753279986288915},
		{"half at 50%", 5, 10, 0.5, 0.39569991542468774, 0.6043000845753123},
	}
	for _, c := range cases {
		ci := WilsonCI(c.s, c.n, c.level)
		if math.Abs(ci.Lo-c.wantLo) > 1e-7 || math.Abs(ci.Hi-c.wantHi) > 1e-7 {
			t.Errorf("%s: WilsonCI(%d, %d, %v) = [%v, %v], want [%v, %v]",
				c.name, c.s, c.n, c.level, ci.Lo, ci.Hi, c.wantLo, c.wantHi)
		}
		if ci.Lo < 0 || ci.Hi > 1 || ci.Lo > ci.Hi {
			t.Errorf("%s: illegal interval [%v, %v]", c.name, ci.Lo, ci.Hi)
		}
		if ci.Level != c.level {
			t.Errorf("%s: level %v, want %v", c.name, ci.Level, c.level)
		}
		p := float64(c.s) / float64(c.n)
		if p < ci.Lo || p > ci.Hi {
			t.Errorf("%s: point estimate %v outside [%v, %v]", c.name, p, ci.Lo, ci.Hi)
		}
	}
}

func TestWilsonCIWiderAtHigherLevel(t *testing.T) {
	lo := WilsonCI(7, 10, 0.8)
	hi := WilsonCI(7, 10, 0.99)
	if hi.Hi-hi.Lo <= lo.Hi-lo.Lo {
		t.Errorf("99%% interval [%v,%v] not wider than 80%% [%v,%v]",
			hi.Lo, hi.Hi, lo.Lo, lo.Hi)
	}
}

func TestWilsonCIPanics(t *testing.T) {
	cases := []struct {
		name  string
		s, n  int
		level float64
	}{
		{"zero n", 0, 0, 0.95},
		{"negative n", 1, -1, 0.95},
		{"negative successes", -1, 10, 0.95},
		{"successes > n", 11, 10, 0.95},
		{"level 0", 5, 10, 0},
		{"level 1", 5, 10, 1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: WilsonCI(%d, %d, %v) did not panic", c.name, c.s, c.n, c.level)
				}
			}()
			WilsonCI(c.s, c.n, c.level)
		}()
	}
}
