package stats

import (
	"fmt"
	"math"
)

// WilsonCI returns the Wilson score interval for a binomial proportion:
// successes out of n trials at the given two-sided confidence level. Unlike
// the normal (Wald) interval it stays inside [0, 1] and behaves sensibly at
// the edges the SLA layer cares about — n = 1, zero successes, all
// successes — mirroring Percentile's clamp semantics: the bounds are always
// legal probabilities. It panics on n <= 0, successes outside [0, n] or a
// level outside (0, 1).
func WilsonCI(successes, n int, level float64) CI {
	if n <= 0 {
		panic(fmt.Sprintf("stats: WilsonCI with non-positive n %d", n))
	}
	if successes < 0 || successes > n {
		panic(fmt.Sprintf("stats: WilsonCI with %d successes out of %d", successes, n))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v outside (0, 1)", level))
	}
	z := Probit(1 - (1-level)/2)
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi := center-half, center+half
	// Float rounding must never push the bounds outside [0, 1], and at the
	// exact edges the interval endpoints are exact: for p = 1 the upper
	// bound is 1 and for p = 0 the lower bound is 0 (the score inequality
	// is tight there), so the point estimate always lies inside.
	if lo < 0 || successes == 0 {
		lo = 0
	}
	if hi > 1 || successes == n {
		hi = 1
	}
	return CI{Lo: lo, Hi: hi, Level: level}
}

// Probit is the inverse standard-normal CDF (the quantile function),
// computed with Acklam's rational approximation (relative error below
// 1.15e-9 across the domain) — dependency-free and bit-stable across
// platforms, like everything else in this package. It panics on p outside
// (0, 1).
func Probit(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: Probit of %v outside (0, 1)", p))
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalCDF is the standard normal distribution function Φ(x), the
// counterpart of Probit used by the SLA layer's analytic meet-probability
// estimate.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
