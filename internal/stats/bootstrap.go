package stats

import (
	"fmt"
	"sort"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// String renders the interval.
func (ci CI) String() string {
	return fmt.Sprintf("[%.2f, %.2f]@%.0f%%", ci.Lo, ci.Hi, 100*ci.Level)
}

// Contains reports whether x lies inside the interval.
func (ci CI) Contains(x float64) bool { return x >= ci.Lo && x <= ci.Hi }

// BootstrapMeanCI estimates a percentile-bootstrap confidence interval for
// the sample mean: resamples draws with replacement, recomputes the mean
// each time, and takes the (1-level)/2 tails. Deterministic for a given
// seed. It panics on an empty sample, a non-positive resample count or a
// level outside (0, 1).
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed uint64) CI {
	if len(xs) == 0 {
		panic("stats: BootstrapMeanCI of empty sample")
	}
	if resamples <= 0 {
		panic(fmt.Sprintf("stats: non-positive resample count %d", resamples))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v outside (0, 1)", level))
	}
	r := NewRNG(seed)
	means := make([]float64, resamples)
	n := len(xs)
	for i := range means {
		var sum float64
		for k := 0; k < n; k++ {
			sum += xs[r.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return CI{
		Lo:    Percentile(means, alpha),
		Hi:    Percentile(means, 1-alpha),
		Level: level,
	}
}
