package validate

// This file is the differential half of the package: instead of checking a
// schedule against itself (validate.Schedule), it checks the planner
// against the simulator. The two compute the same quantities — task times,
// lease spans, BTU counts, cost, idle — by entirely different means
// (analytic forward planning vs discrete-event replay), so any
// disagreement beyond Eps is a modelling bug in one of them. A third,
// independent accounting (Account) re-derives billing and fault counters
// from the obs event stream alone, so even an error shared by planner and
// simulator bookkeeping is caught unless it is also reproduced in the
// event emission.

import (
	"fmt"
	"math"

	"repro/internal/cloud"
	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Lease is one lease incarnation re-derived from the event stream.
type Lease struct {
	VM      int     // VM / incarnation index (obs.Event.VM)
	Type    string  // bare instance-type name from the lease-start label
	Start   float64 // lease-start time (billing origin)
	End     float64 // teardown time from the lease-stop event
	BTUs    int     // billed BTUs: observed rollovers + 1 (0 for prepaid and non-BTU leases)
	Paid    float64 // billed seconds under the lease's granularity (0 for prepaid)
	Cost    float64 // lease price from the lease-stop event (0 for prepaid)
	Busy    float64 // attempt seconds on the lease: completed + burned
	Crashed bool    // the lease was lost to an injected fault or preemption
	// Preempted narrows Crashed: the loss was a spot reclamation
	// (KindVMPreempt), not an injected crash.
	Preempted bool
	Prepaid   bool // zero-cost teardown: private-cloud capacity
	// Terms is the billing-relevant market terms parsed from the
	// lease-start label's "+"-tokens (granularity, spot, warm); nil for a
	// bare legacy label.
	Terms *market.Lease
}

// Accounting is a complete billing and fault ledger re-derived from an
// event stream, independent of both the planner's and the simulator's own
// bookkeeping.
type Accounting struct {
	Leases map[int]*Lease // keyed by VM / incarnation index

	RentalCost  float64 // summed lease costs
	IdleSeconds float64 // summed paid-but-unused time of billed leases
	BTUSeconds  float64 // summed paid time of billed leases

	CompletedTasks int // distinct tasks that finished
	Crashes        int
	Failures       int
	Retries        int
	Resubmits      int
	Transfers      int
	WastedSeconds  float64 // burned attempt time: transient aborts + crash-interrupted work
	UsefulSeconds  float64 // attempt time of completed tasks, prepaid leases included

	// Market counters, mirroring sim.Result's: spot reclamations, the
	// on-demand fallback leases they opened, the premium those leases
	// billed (from KindVMFallback events), and the paid-but-unused time
	// of warm-pool leases.
	Preempts        int
	FallbackVMs     int
	FallbackPremium float64
	WarmIdleSeconds float64
}

// runningAttempt tracks the open task attempt on one lease while folding
// the stream, so a crash can charge the interrupted work.
type runningAttempt struct {
	task  int32
	start float64
	open  bool
}

// Account folds a simulator event stream into an independent Accounting.
// It only assumes what the stream format guarantees: per-VM ordering of
// lease-lifecycle events and causal ordering of task events. It returns an
// error when the stream itself is malformed (a stop without a start, two
// opens of one incarnation) — which would indicate an emission bug, a
// different failure class than a quantity mismatch.
func Account(events []obs.Event) (*Accounting, error) {
	acc := &Accounting{Leases: make(map[int]*Lease)}
	running := make(map[int]*runningAttempt)
	finished := make(map[int32]bool)
	for _, ev := range events {
		vi := int(ev.VM)
		switch ev.Kind {
		case obs.KindVMLeaseStart:
			if _, dup := acc.Leases[vi]; dup {
				return nil, fmt.Errorf("oracle: lease %d opened twice", vi)
			}
			typ, terms, err := market.ParseLabel(ev.Label)
			if err != nil {
				return nil, fmt.Errorf("oracle: lease %d: %w", vi, err)
			}
			acc.Leases[vi] = &Lease{VM: vi, Type: typ, Terms: terms, Start: ev.T, End: math.NaN()}
		case obs.KindVMBTURollover:
			l, ok := acc.Leases[vi]
			if !ok {
				return nil, fmt.Errorf("oracle: BTU rollover on unopened lease %d", vi)
			}
			l.BTUs++
		case obs.KindVMCrash, obs.KindVMPreempt:
			l, ok := acc.Leases[vi]
			if !ok {
				return nil, fmt.Errorf("oracle: crash on unopened lease %d", vi)
			}
			l.Crashed = true
			if ev.Kind == obs.KindVMPreempt {
				l.Preempted = true
				acc.Preempts++
			} else {
				acc.Crashes++
			}
			if r := running[vi]; r != nil && r.open {
				// The interrupted attempt burned work the bill still covers.
				burned := ev.T - r.start
				l.Busy += burned
				acc.WastedSeconds += burned
				r.open = false
			}
		case obs.KindVMFallback:
			if _, ok := acc.Leases[vi]; !ok {
				return nil, fmt.Errorf("oracle: fallback accounting on unopened lease %d", vi)
			}
			acc.FallbackVMs++
			acc.FallbackPremium += ev.Value
		case obs.KindVMLeaseStop:
			l, ok := acc.Leases[vi]
			if !ok {
				return nil, fmt.Errorf("oracle: lease %d stopped before starting", vi)
			}
			if !math.IsNaN(l.End) {
				return nil, fmt.Errorf("oracle: lease %d stopped twice", vi)
			}
			l.End = ev.T
			l.Cost = ev.Value
			l.Prepaid = ev.Value == 0 // a billed lease costs at least one BTU
		case obs.KindTaskStart:
			running[vi] = &runningAttempt{task: ev.Task, start: ev.T, open: true}
		case obs.KindTaskFinish:
			l, ok := acc.Leases[vi]
			if !ok {
				return nil, fmt.Errorf("oracle: task %d finished on unopened lease %d", ev.Task, vi)
			}
			r := running[vi]
			if r == nil || !r.open || r.task != ev.Task {
				return nil, fmt.Errorf("oracle: task %d finished on lease %d without a matching start", ev.Task, vi)
			}
			l.Busy += ev.T - r.start
			acc.UsefulSeconds += ev.T - r.start
			r.open = false
			if finished[ev.Task] {
				return nil, fmt.Errorf("oracle: task %d finished twice", ev.Task)
			}
			finished[ev.Task] = true
			acc.CompletedTasks++
		case obs.KindTaskFail:
			l, ok := acc.Leases[vi]
			if !ok {
				return nil, fmt.Errorf("oracle: task %d failed on unopened lease %d", ev.Task, vi)
			}
			l.Busy += ev.Value // the burned fraction travels on the event
			acc.WastedSeconds += ev.Value
			acc.Failures++
			if r := running[vi]; r != nil && r.task == ev.Task {
				r.open = false
			}
		case obs.KindTaskRetry:
			acc.Retries++
		case obs.KindTaskResubmit:
			acc.Resubmits++
		case obs.KindTransferEnd:
			acc.Transfers++
		}
	}
	for vi, l := range acc.Leases {
		if math.IsNaN(l.End) {
			return nil, fmt.Errorf("oracle: lease %d never stopped", vi)
		}
		if l.Prepaid {
			continue
		}
		var paid float64
		if l.Terms.BTUBilled() {
			if l.BTUs == 0 {
				l.BTUs = 1 // no rollover observed: the minimum whole BTU
			} else {
				l.BTUs++ // n rollovers delimit n+1 paid units
			}
			paid = float64(l.BTUs) * cloud.BTU
		} else {
			// Finer granularities emit no rollover markers (one per minute
			// or second would flood the stream); the paid units are
			// re-derived from the observed span through the same
			// eps-guarded rounding every other layer uses.
			if l.BTUs != 0 {
				return nil, fmt.Errorf("oracle: lease %d: BTU rollovers on a %s-billed lease",
					vi, l.Terms.Granularity())
			}
			unit := l.Terms.Granularity().Unit()
			paid = float64(cloud.Units(l.End-l.Start, unit)) * unit
		}
		l.Paid = paid
		acc.RentalCost += l.Cost
		acc.BTUSeconds += paid
		acc.IdleSeconds += paid - l.Busy
		if l.Terms.IsWarm() {
			acc.WarmIdleSeconds += paid - l.Busy
		}
	}
	return acc, nil
}

// PlanSim is the fault-free differential oracle: it validates the static
// invariants, replays the schedule through the simulator with recording
// on, and asserts that planner, simulator and the event-stream accounting
// agree — task starts and ends, per-VM lease spans (held reservations
// included), BTU counts, lease costs, total cost and idle time — all
// within the shared Eps. It returns a descriptive error naming the first
// divergent quantity.
func PlanSim(s *plan.Schedule) error {
	if err := Schedule(s); err != nil {
		return err
	}
	col := &obs.Collector{}
	res, err := sim.Run(s, sim.Config{Recorder: col})
	if err != nil {
		return fmt.Errorf("oracle: replay failed: %w", err)
	}
	if !res.Completed {
		return fmt.Errorf("oracle: fault-free replay did not complete: %s", res.FailReason)
	}
	for id := range res.TaskStart {
		if !Close(res.TaskStart[id], s.Start[id]) {
			return fmt.Errorf("oracle: task %d start: simulated %v, planned %v",
				id, res.TaskStart[id], s.Start[id])
		}
		if !Close(res.TaskEnd[id], s.End[id]) {
			return fmt.Errorf("oracle: task %d end: simulated %v, planned %v",
				id, res.TaskEnd[id], s.End[id])
		}
	}
	if !Close(res.Makespan, s.Makespan()) {
		return fmt.Errorf("oracle: makespan: simulated %v, planned %v", res.Makespan, s.Makespan())
	}
	if !Close(res.RentalCost, s.RentalCost()) {
		return fmt.Errorf("oracle: rental cost: simulated %v, planned %v", res.RentalCost, s.RentalCost())
	}
	if !Close(res.IdleTime, s.IdleTime()) {
		return fmt.Errorf("oracle: idle time: simulated %v, planned %v", res.IdleTime, s.IdleTime())
	}

	acc, err := Account(col.Events)
	if err != nil {
		return err
	}
	for vi, vm := range s.VMs {
		leased := len(vm.Slots) > 0 || vm.Held > 0
		l, ok := acc.Leases[vi]
		if !leased {
			if ok {
				return fmt.Errorf("oracle: unleased VM %d has lease events", vi)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("oracle: leased VM %d emitted no lease events", vi)
		}
		if !Close(l.Start, vm.LeaseStart()) {
			return fmt.Errorf("oracle: VM %d lease start: events %v, planned %v", vi, l.Start, vm.LeaseStart())
		}
		if !Close(l.End, vm.LeaseEnd()) {
			return fmt.Errorf("oracle: VM %d lease end: events %v, planned %v", vi, l.End, vm.LeaseEnd())
		}
		if l.Prepaid != vm.Prepaid {
			return fmt.Errorf("oracle: VM %d prepaid: events %v, planned %v", vi, l.Prepaid, vm.Prepaid)
		}
		if vm.Prepaid {
			continue
		}
		if l.Terms.Granularity() != vm.Lease.Granularity() ||
			l.Terms.IsSpot() != vm.Lease.IsSpot() ||
			l.Terms.IsWarm() != vm.Lease.IsWarm() {
			return fmt.Errorf("oracle: VM %d lease terms: events %s/%v/%v, planned %s/%v/%v",
				vi, l.Terms.Granularity(), l.Terms.IsSpot(), l.Terms.IsWarm(),
				vm.Lease.Granularity(), vm.Lease.IsSpot(), vm.Lease.IsWarm())
		}
		if vm.Lease.BTUBilled() {
			if want := cloud.BTUs(vm.Span()); l.BTUs != want {
				return fmt.Errorf("oracle: VM %d BTUs: events %d, planned %d", vi, l.BTUs, want)
			}
		}
		if !Close(l.Paid, vm.PaidSeconds()) {
			return fmt.Errorf("oracle: VM %d paid seconds: events %v, planned %v",
				vi, l.Paid, vm.PaidSeconds())
		}
		if !Close(l.Cost, vm.Cost()) {
			return fmt.Errorf("oracle: VM %d cost: events %v, planned %v", vi, l.Cost, vm.Cost())
		}
		if !Close(l.Busy, vm.Busy()) {
			return fmt.Errorf("oracle: VM %d busy: events %v, planned %v", vi, l.Busy, vm.Busy())
		}
	}
	if len(acc.Leases) > len(s.VMs) {
		return fmt.Errorf("oracle: %d leases in events, %d VMs planned", len(acc.Leases), len(s.VMs))
	}
	if !Close(acc.RentalCost, s.RentalCost()) {
		return fmt.Errorf("oracle: rental cost: events %v, planned %v", acc.RentalCost, s.RentalCost())
	}
	if !Close(acc.IdleSeconds, s.IdleTime()) {
		return fmt.Errorf("oracle: idle time: events %v, planned %v", acc.IdleSeconds, s.IdleTime())
	}
	if acc.CompletedTasks != s.Workflow.Len() {
		return fmt.Errorf("oracle: %d task finishes in events, %d tasks planned",
			acc.CompletedTasks, s.Workflow.Len())
	}
	if acc.Crashes != 0 || acc.Failures != 0 || acc.Preempts != 0 || acc.FallbackVMs != 0 {
		return fmt.Errorf("oracle: fault events (%d crashes, %d failures, %d preemptions, %d fallbacks) in a fault-free replay",
			acc.Crashes, acc.Failures, acc.Preempts, acc.FallbackVMs)
	}
	// Warm-pool idle is the third-checked standing cost of the WarmPool
	// hedge: the planner sums Idle over warm leases, the simulator
	// accumulates it at teardown, and the ledger re-derives it from
	// labeled lease events.
	var planWarm float64
	for _, vm := range s.VMs {
		if vm.Lease.IsWarm() {
			planWarm += vm.Idle()
		}
	}
	if !Close(res.WarmIdleSeconds, planWarm) {
		return fmt.Errorf("oracle: warm idle: simulated %v, planned %v", res.WarmIdleSeconds, planWarm)
	}
	if !Close(acc.WarmIdleSeconds, planWarm) {
		return fmt.Errorf("oracle: warm idle: events %v, planned %v", acc.WarmIdleSeconds, planWarm)
	}
	return nil
}

// FaultReplay is the fault-mode differential oracle: it replays the
// schedule under the given fault model, re-derives the full ledger from
// the event stream, and cross-checks every counter and accumulated
// quantity the Result reports — crashes, transient failures, retries,
// resubmissions, completed tasks, wasted seconds, rental cost and idle
// time. On success it returns both accountings so callers can derive
// further cross-checks (internal/fuzzcheck verifies
// metrics.ReliabilityOf against them; validate cannot import metrics).
func FaultReplay(s *plan.Schedule, fc *fault.Config) (*sim.Result, *Accounting, error) {
	if err := Schedule(s); err != nil {
		return nil, nil, err
	}
	col := &obs.Collector{}
	res, err := sim.Run(s, sim.Config{Faults: fc, Recorder: col})
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: faulty replay failed: %w", err)
	}
	acc, err := Account(col.Events)
	if err != nil {
		return res, nil, err
	}
	if err := CrossCheck(res, acc); err != nil {
		return res, acc, err
	}
	return res, acc, nil
}

// CrossCheck compares a replay Result against the event-derived ledger of
// the same run: every fault counter and accumulated quantity must match.
// FaultReplay calls it; callers that already hold a collector (the sweep
// driver's paranoid fault mode) can call it directly without a second
// replay.
func CrossCheck(res *sim.Result, acc *Accounting) error {
	counts := []struct {
		name      string
		got, want int
	}{
		{"crashes", acc.Crashes, res.VMCrashes},
		{"task failures", acc.Failures, res.TaskFailures},
		{"retries", acc.Retries, res.Retries},
		{"resubmits", acc.Resubmits, res.Resubmits},
		{"completed tasks", acc.CompletedTasks, res.CompletedTasks},
		{"transfers", acc.Transfers, res.Transfers},
		{"spot preemptions", acc.Preempts, res.SpotPreemptions},
		{"fallback leases", acc.FallbackVMs, res.FallbackVMs},
	}
	for _, c := range counts {
		if c.got != c.want {
			return fmt.Errorf("oracle: %s: events %d, result %d", c.name, c.got, c.want)
		}
	}
	if !Close(acc.WastedSeconds, res.WastedSeconds) {
		return fmt.Errorf("oracle: wasted seconds: events %v, result %v",
			acc.WastedSeconds, res.WastedSeconds)
	}
	if !Close(acc.RentalCost, res.RentalCost) {
		return fmt.Errorf("oracle: rental cost: events %v, result %v",
			acc.RentalCost, res.RentalCost)
	}
	if !Close(acc.IdleSeconds, res.IdleTime) {
		return fmt.Errorf("oracle: idle time: events %v, result %v",
			acc.IdleSeconds, res.IdleTime)
	}
	if !Close(acc.FallbackPremium, res.FallbackPremium) {
		return fmt.Errorf("oracle: fallback premium: events %v, result %v",
			acc.FallbackPremium, res.FallbackPremium)
	}
	if !Close(acc.WarmIdleSeconds, res.WarmIdleSeconds) {
		return fmt.Errorf("oracle: warm idle: events %v, result %v",
			acc.WarmIdleSeconds, res.WarmIdleSeconds)
	}
	return nil
}
