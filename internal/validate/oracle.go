package validate

// This file is the differential half of the package: instead of checking a
// schedule against itself (validate.Schedule), it checks the planner
// against the simulator. The two compute the same quantities — task times,
// lease spans, BTU counts, cost, idle — by entirely different means
// (analytic forward planning vs discrete-event replay), so any
// disagreement beyond Eps is a modelling bug in one of them. A third,
// independent accounting (Account) re-derives billing and fault counters
// from the obs event stream alone, so even an error shared by planner and
// simulator bookkeeping is caught unless it is also reproduced in the
// event emission.

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cloud"
	"repro/internal/fault"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Lease is one lease incarnation re-derived from the event stream.
type Lease struct {
	Opened  bool    // a lease-start event was seen for this incarnation
	VM      int     // VM / incarnation index (obs.Event.VM)
	Type    string  // bare instance-type name from the lease-start label
	Start   float64 // lease-start time (billing origin)
	End     float64 // teardown time from the lease-stop event
	BTUs    int     // billed BTUs: observed rollovers + 1 (0 for prepaid and non-BTU leases)
	Paid    float64 // billed seconds under the lease's granularity (0 for prepaid)
	Cost    float64 // lease price from the lease-stop event (0 for prepaid)
	Busy    float64 // attempt seconds on the lease: completed + burned
	Crashed bool    // the lease was lost to an injected fault or preemption
	// Preempted narrows Crashed: the loss was a spot reclamation
	// (KindVMPreempt), not an injected crash.
	Preempted bool
	Prepaid   bool // zero-cost teardown: private-cloud capacity
	// Terms is the billing-relevant market terms parsed from the
	// lease-start label's "+"-tokens (granularity, spot, warm); nil for a
	// bare legacy label.
	Terms *market.Lease
}

// Accounting is a complete billing and fault ledger re-derived from an
// event stream, independent of both the planner's and the simulator's own
// bookkeeping.
type Accounting struct {
	// Leases is indexed by VM / incarnation index — the simulator hands
	// them out densely, so a slice replaces the map the ledger used to
	// fold into (the sweep's dominant allocation source). Entries whose
	// Opened flag is false saw no lease events (a planned VM that was
	// never rented); use Lease and NumLeases to skip them.
	Leases []Lease
	opened int // count of Opened entries

	RentalCost  float64 // summed lease costs
	IdleSeconds float64 // summed paid-but-unused time of billed leases
	BTUSeconds  float64 // summed paid time of billed leases

	CompletedTasks int // distinct tasks that finished
	Crashes        int
	Failures       int
	Retries        int
	Resubmits      int
	Transfers      int
	WastedSeconds  float64 // burned attempt time: transient aborts + crash-interrupted work
	UsefulSeconds  float64 // attempt time of completed tasks, prepaid leases included

	// Market counters, mirroring sim.Result's: spot reclamations, the
	// on-demand fallback leases they opened, the premium those leases
	// billed (from KindVMFallback events), and the paid-but-unused time
	// of warm-pool leases.
	Preempts        int
	FallbackVMs     int
	FallbackPremium float64
	WarmIdleSeconds float64
}

// Lease returns the ledger entry of one VM / incarnation index, or nil
// when the stream held no lease events for it.
func (a *Accounting) Lease(vi int) *Lease {
	if vi < 0 || vi >= len(a.Leases) || !a.Leases[vi].Opened {
		return nil
	}
	return &a.Leases[vi]
}

// NumLeases returns the number of lease incarnations the stream opened.
func (a *Accounting) NumLeases() int { return a.opened }

// runningAttempt tracks the open task attempt on one lease while folding
// the stream, so a crash can charge the interrupted work.
type runningAttempt struct {
	task  int32
	start float64
	open  bool
}

// labelTerms is one memoized ParseLabel result. Lease-start labels repeat
// across cells (a handful of type/terms combinations cover a whole sweep),
// so the Scratch parses each distinct label once and shares the read-only
// terms across ledger entries.
type labelTerms struct {
	typ   string
	terms *market.Lease
}

// Scratch holds the oracle's reusable state: the ledger arrays Account
// folds into, the event collector and simulator scratch PlanSim replays
// with, and the parsed-label memo. All returned pointers (the *Accounting,
// its lease entries) alias the scratch and are only valid until the next
// call. A Scratch is not safe for concurrent use; give each sweep worker
// its own. The zero value is ready to use.
type Scratch struct {
	acc      Accounting
	running  []runningAttempt
	finished []bool
	labels   map[string]labelTerms

	col    obs.Collector
	simsc  sim.Scratch
	simres sim.Result
}

// NewScratch returns an empty oracle scratch.
func NewScratch() *Scratch { return &Scratch{} }

// growLease resizes s to n entries, zeroing anything stale beyond the old
// length and reallocating only when capacity is short.
func growLease(s []Lease, n int) []Lease {
	if cap(s) < n {
		ns := make([]Lease, n, max(n, 2*cap(s)))
		copy(ns, s)
		return ns
	}
	tail := s[len(s):n]
	for i := range tail {
		tail[i] = Lease{}
	}
	return s[:n]
}

// lease returns the open ledger entry for vi, growing the arrays as new
// incarnation indices appear; nil when vi never opened.
func (sc *Scratch) lease(vi int) *Lease {
	if vi < 0 || vi >= len(sc.acc.Leases) || !sc.acc.Leases[vi].Opened {
		return nil
	}
	return &sc.acc.Leases[vi]
}

// parseLabel memoizes market.ParseLabel per distinct label string.
func (sc *Scratch) parseLabel(label string) (string, *market.Lease, error) {
	if lt, ok := sc.labels[label]; ok {
		return lt.typ, lt.terms, nil
	}
	typ, terms, err := market.ParseLabel(label)
	if err != nil {
		return typ, terms, err
	}
	if sc.labels == nil {
		sc.labels = make(map[string]labelTerms)
	}
	sc.labels[label] = labelTerms{typ: typ, terms: terms}
	return typ, terms, nil
}

// Account folds a simulator event stream into an independent Accounting.
// It only assumes what the stream format guarantees: per-VM ordering of
// lease-lifecycle events and causal ordering of task events. It returns an
// error when the stream itself is malformed (a stop without a start, two
// opens of one incarnation) — which would indicate an emission bug, a
// different failure class than a quantity mismatch.
func Account(events []obs.Event) (*Accounting, error) {
	return new(Scratch).Account(events)
}

// Account folds an event stream into the scratch's reused ledger arrays —
// the package-level Account without its per-call allocations. The returned
// Accounting aliases the scratch and is valid until the next call.
func (sc *Scratch) Account(events []obs.Event) (*Accounting, error) {
	acc := &sc.acc
	leases := acc.Leases[:0]
	*acc = Accounting{}
	running := sc.running[:0]
	finished := sc.finished[:0]
	defer func() {
		// Hand the (possibly reallocated) arrays back for the next fold.
		acc.Leases, sc.running, sc.finished = leases, running, finished
	}()
	// ensureVM grows the per-incarnation arrays to cover index vi.
	ensureVM := func(vi int) {
		if vi >= len(leases) {
			leases = growLease(leases, vi+1)
			if cap(running) < vi+1 {
				nr := make([]runningAttempt, vi+1, max(vi+1, 2*cap(running)))
				copy(nr, running)
				running = nr
			} else {
				tail := running[len(running) : vi+1]
				for i := range tail {
					tail[i] = runningAttempt{}
				}
				running = running[:vi+1]
			}
		}
	}
	for _, ev := range events {
		vi := int(ev.VM)
		if vi >= len(leases) {
			switch ev.Kind {
			case obs.KindVMLeaseStart, obs.KindVMBTURollover, obs.KindVMCrash, obs.KindVMPreempt,
				obs.KindVMFallback, obs.KindVMLeaseStop, obs.KindTaskStart, obs.KindTaskFinish,
				obs.KindTaskFail:
				ensureVM(vi)
			}
		}
		switch ev.Kind {
		case obs.KindVMLeaseStart:
			if vi < 0 {
				return nil, fmt.Errorf("oracle: lease start with VM index %d", vi)
			}
			if leases[vi].Opened {
				return nil, fmt.Errorf("oracle: lease %d opened twice", vi)
			}
			typ, terms, err := sc.parseLabel(ev.Label)
			if err != nil {
				return nil, fmt.Errorf("oracle: lease %d: %w", vi, err)
			}
			leases[vi] = Lease{Opened: true, VM: vi, Type: typ, Terms: terms, Start: ev.T, End: math.NaN()}
			acc.opened++
		case obs.KindVMBTURollover:
			l := leaseAt(leases, vi)
			if l == nil {
				return nil, fmt.Errorf("oracle: BTU rollover on unopened lease %d", vi)
			}
			l.BTUs++
		case obs.KindVMCrash, obs.KindVMPreempt:
			l := leaseAt(leases, vi)
			if l == nil {
				return nil, fmt.Errorf("oracle: crash on unopened lease %d", vi)
			}
			l.Crashed = true
			if ev.Kind == obs.KindVMPreempt {
				l.Preempted = true
				acc.Preempts++
			} else {
				acc.Crashes++
			}
			if r := &running[vi]; r.open {
				// The interrupted attempt burned work the bill still covers.
				burned := ev.T - r.start
				l.Busy += burned
				acc.WastedSeconds += burned
				r.open = false
			}
		case obs.KindVMFallback:
			if leaseAt(leases, vi) == nil {
				return nil, fmt.Errorf("oracle: fallback accounting on unopened lease %d", vi)
			}
			acc.FallbackVMs++
			acc.FallbackPremium += ev.Value
		case obs.KindVMLeaseStop:
			l := leaseAt(leases, vi)
			if l == nil {
				return nil, fmt.Errorf("oracle: lease %d stopped before starting", vi)
			}
			if !math.IsNaN(l.End) {
				return nil, fmt.Errorf("oracle: lease %d stopped twice", vi)
			}
			l.End = ev.T
			l.Cost = ev.Value
			l.Prepaid = ev.Value == 0 // a billed lease costs at least one BTU
		case obs.KindTaskStart:
			if vi >= 0 {
				running[vi] = runningAttempt{task: ev.Task, start: ev.T, open: true}
			}
		case obs.KindTaskFinish:
			l := leaseAt(leases, vi)
			if l == nil {
				return nil, fmt.Errorf("oracle: task %d finished on unopened lease %d", ev.Task, vi)
			}
			r := &running[vi]
			if !r.open || r.task != ev.Task {
				return nil, fmt.Errorf("oracle: task %d finished on lease %d without a matching start", ev.Task, vi)
			}
			l.Busy += ev.T - r.start
			acc.UsefulSeconds += ev.T - r.start
			r.open = false
			if int(ev.Task) >= len(finished) {
				if cap(finished) < int(ev.Task)+1 {
					nf := make([]bool, int(ev.Task)+1, max(int(ev.Task)+1, 2*cap(finished)))
					copy(nf, finished)
					finished = nf
				} else {
					tail := finished[len(finished) : int(ev.Task)+1]
					for i := range tail {
						tail[i] = false
					}
					finished = finished[:int(ev.Task)+1]
				}
			}
			if ev.Task >= 0 && finished[ev.Task] {
				return nil, fmt.Errorf("oracle: task %d finished twice", ev.Task)
			}
			if ev.Task >= 0 {
				finished[ev.Task] = true
			}
			acc.CompletedTasks++
		case obs.KindTaskFail:
			l := leaseAt(leases, vi)
			if l == nil {
				return nil, fmt.Errorf("oracle: task %d failed on unopened lease %d", ev.Task, vi)
			}
			l.Busy += ev.Value // the burned fraction travels on the event
			acc.WastedSeconds += ev.Value
			acc.Failures++
			if r := &running[vi]; r.task == ev.Task {
				r.open = false
			}
		case obs.KindTaskRetry:
			acc.Retries++
		case obs.KindTaskResubmit:
			acc.Resubmits++
		case obs.KindTransferEnd:
			acc.Transfers++
		}
	}
	for vi := range leases {
		l := &leases[vi]
		if !l.Opened {
			continue
		}
		if math.IsNaN(l.End) {
			return nil, fmt.Errorf("oracle: lease %d never stopped", vi)
		}
		if l.Prepaid {
			continue
		}
		var paid float64
		if l.Terms.BTUBilled() {
			if l.BTUs == 0 {
				l.BTUs = 1 // no rollover observed: the minimum whole BTU
			} else {
				l.BTUs++ // n rollovers delimit n+1 paid units
			}
			paid = float64(l.BTUs) * cloud.BTU
		} else {
			// Finer granularities emit no rollover markers (one per minute
			// or second would flood the stream); the paid units are
			// re-derived from the observed span through the same
			// eps-guarded rounding every other layer uses.
			if l.BTUs != 0 {
				return nil, fmt.Errorf("oracle: lease %d: BTU rollovers on a %s-billed lease",
					vi, l.Terms.Granularity())
			}
			unit := l.Terms.Granularity().Unit()
			paid = float64(cloud.Units(l.End-l.Start, unit)) * unit
		}
		l.Paid = paid
		acc.RentalCost += l.Cost
		acc.BTUSeconds += paid
		acc.IdleSeconds += paid - l.Busy
		if l.Terms.IsWarm() {
			acc.WarmIdleSeconds += paid - l.Busy
		}
	}
	return acc, nil
}

// leaseAt returns the open entry at vi in a fold-local lease slice, nil
// when out of range or never opened.
func leaseAt(leases []Lease, vi int) *Lease {
	if vi < 0 || vi >= len(leases) || !leases[vi].Opened {
		return nil
	}
	return &leases[vi]
}

// PlanSim is the fault-free differential oracle: it validates the static
// invariants, replays the schedule through the simulator with recording
// on, and asserts that planner, simulator and the event-stream accounting
// agree — task starts and ends, per-VM lease spans (held reservations
// included), BTU counts, lease costs, total cost and idle time — all
// within the shared Eps. It returns a descriptive error naming the first
// divergent quantity.
func PlanSim(s *plan.Schedule) error {
	sc := planSimPool.Get().(*Scratch)
	err := sc.PlanSim(s)
	planSimPool.Put(sc)
	return err
}

// planSimPool backs the package-level PlanSim so callers that don't manage
// a Scratch of their own (the service's debug path, tests) still reuse
// oracle state across calls. Nothing a PlanSim call returns aliases the
// scratch, so pooling is safe.
var planSimPool = sync.Pool{New: func() any { return NewScratch() }}

// PlanSim is the fault-free differential oracle against the scratch's
// reused collector, simulator arenas and ledger — the hot-loop form of the
// package-level PlanSim.
func (sc *Scratch) PlanSim(s *plan.Schedule) error {
	if err := Schedule(s); err != nil {
		return err
	}
	sc.col.Events = sc.col.Events[:0]
	res := &sc.simres
	if err := sc.simsc.Run(s, sim.Config{Recorder: &sc.col}, res); err != nil {
		return fmt.Errorf("oracle: replay failed: %w", err)
	}
	if !res.Completed {
		return fmt.Errorf("oracle: fault-free replay did not complete: %s", res.FailReason)
	}
	for id := range res.TaskStart {
		if !Close(res.TaskStart[id], s.Start[id]) {
			return fmt.Errorf("oracle: task %d start: simulated %v, planned %v",
				id, res.TaskStart[id], s.Start[id])
		}
		if !Close(res.TaskEnd[id], s.End[id]) {
			return fmt.Errorf("oracle: task %d end: simulated %v, planned %v",
				id, res.TaskEnd[id], s.End[id])
		}
	}
	if !Close(res.Makespan, s.Makespan()) {
		return fmt.Errorf("oracle: makespan: simulated %v, planned %v", res.Makespan, s.Makespan())
	}
	if !Close(res.RentalCost, s.RentalCost()) {
		return fmt.Errorf("oracle: rental cost: simulated %v, planned %v", res.RentalCost, s.RentalCost())
	}
	if !Close(res.IdleTime, s.IdleTime()) {
		return fmt.Errorf("oracle: idle time: simulated %v, planned %v", res.IdleTime, s.IdleTime())
	}

	acc, err := sc.Account(sc.col.Events)
	if err != nil {
		return err
	}
	for vi, vm := range s.VMs {
		leased := len(vm.Slots) > 0 || vm.Held > 0
		l := acc.Lease(vi)
		if !leased {
			if l != nil {
				return fmt.Errorf("oracle: unleased VM %d has lease events", vi)
			}
			continue
		}
		if l == nil {
			return fmt.Errorf("oracle: leased VM %d emitted no lease events", vi)
		}
		if !Close(l.Start, vm.LeaseStart()) {
			return fmt.Errorf("oracle: VM %d lease start: events %v, planned %v", vi, l.Start, vm.LeaseStart())
		}
		if !Close(l.End, vm.LeaseEnd()) {
			return fmt.Errorf("oracle: VM %d lease end: events %v, planned %v", vi, l.End, vm.LeaseEnd())
		}
		if l.Prepaid != vm.Prepaid {
			return fmt.Errorf("oracle: VM %d prepaid: events %v, planned %v", vi, l.Prepaid, vm.Prepaid)
		}
		if vm.Prepaid {
			continue
		}
		if l.Terms.Granularity() != vm.Lease.Granularity() ||
			l.Terms.IsSpot() != vm.Lease.IsSpot() ||
			l.Terms.IsWarm() != vm.Lease.IsWarm() {
			return fmt.Errorf("oracle: VM %d lease terms: events %s/%v/%v, planned %s/%v/%v",
				vi, l.Terms.Granularity(), l.Terms.IsSpot(), l.Terms.IsWarm(),
				vm.Lease.Granularity(), vm.Lease.IsSpot(), vm.Lease.IsWarm())
		}
		if vm.Lease.BTUBilled() {
			if want := cloud.BTUs(vm.Span()); l.BTUs != want {
				return fmt.Errorf("oracle: VM %d BTUs: events %d, planned %d", vi, l.BTUs, want)
			}
		}
		if !Close(l.Paid, vm.PaidSeconds()) {
			return fmt.Errorf("oracle: VM %d paid seconds: events %v, planned %v",
				vi, l.Paid, vm.PaidSeconds())
		}
		if !Close(l.Cost, vm.Cost()) {
			return fmt.Errorf("oracle: VM %d cost: events %v, planned %v", vi, l.Cost, vm.Cost())
		}
		if !Close(l.Busy, vm.Busy()) {
			return fmt.Errorf("oracle: VM %d busy: events %v, planned %v", vi, l.Busy, vm.Busy())
		}
	}
	if acc.NumLeases() > len(s.VMs) {
		return fmt.Errorf("oracle: %d leases in events, %d VMs planned", acc.NumLeases(), len(s.VMs))
	}
	if !Close(acc.RentalCost, s.RentalCost()) {
		return fmt.Errorf("oracle: rental cost: events %v, planned %v", acc.RentalCost, s.RentalCost())
	}
	if !Close(acc.IdleSeconds, s.IdleTime()) {
		return fmt.Errorf("oracle: idle time: events %v, planned %v", acc.IdleSeconds, s.IdleTime())
	}
	if acc.CompletedTasks != s.Workflow.Len() {
		return fmt.Errorf("oracle: %d task finishes in events, %d tasks planned",
			acc.CompletedTasks, s.Workflow.Len())
	}
	if acc.Crashes != 0 || acc.Failures != 0 || acc.Preempts != 0 || acc.FallbackVMs != 0 {
		return fmt.Errorf("oracle: fault events (%d crashes, %d failures, %d preemptions, %d fallbacks) in a fault-free replay",
			acc.Crashes, acc.Failures, acc.Preempts, acc.FallbackVMs)
	}
	// Warm-pool idle is the third-checked standing cost of the WarmPool
	// hedge: the planner sums Idle over warm leases, the simulator
	// accumulates it at teardown, and the ledger re-derives it from
	// labeled lease events.
	var planWarm float64
	for _, vm := range s.VMs {
		if vm.Lease.IsWarm() {
			planWarm += vm.Idle()
		}
	}
	if !Close(res.WarmIdleSeconds, planWarm) {
		return fmt.Errorf("oracle: warm idle: simulated %v, planned %v", res.WarmIdleSeconds, planWarm)
	}
	if !Close(acc.WarmIdleSeconds, planWarm) {
		return fmt.Errorf("oracle: warm idle: events %v, planned %v", acc.WarmIdleSeconds, planWarm)
	}
	return nil
}

// FaultReplay is the fault-mode differential oracle: it replays the
// schedule under the given fault model, re-derives the full ledger from
// the event stream, and cross-checks every counter and accumulated
// quantity the Result reports — crashes, transient failures, retries,
// resubmissions, completed tasks, wasted seconds, rental cost and idle
// time. On success it returns both accountings so callers can derive
// further cross-checks (internal/fuzzcheck verifies
// metrics.ReliabilityOf against them; validate cannot import metrics).
func FaultReplay(s *plan.Schedule, fc *fault.Config) (*sim.Result, *Accounting, error) {
	if err := Schedule(s); err != nil {
		return nil, nil, err
	}
	col := &obs.Collector{}
	res, err := sim.Run(s, sim.Config{Faults: fc, Recorder: col})
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: faulty replay failed: %w", err)
	}
	acc, err := Account(col.Events)
	if err != nil {
		return res, nil, err
	}
	if err := CrossCheck(res, acc); err != nil {
		return res, acc, err
	}
	return res, acc, nil
}

// CrossCheck compares a replay Result against the event-derived ledger of
// the same run: every fault counter and accumulated quantity must match.
// FaultReplay calls it; callers that already hold a collector (the sweep
// driver's paranoid fault mode) can call it directly without a second
// replay.
func CrossCheck(res *sim.Result, acc *Accounting) error {
	counts := []struct {
		name      string
		got, want int
	}{
		{"crashes", acc.Crashes, res.VMCrashes},
		{"task failures", acc.Failures, res.TaskFailures},
		{"retries", acc.Retries, res.Retries},
		{"resubmits", acc.Resubmits, res.Resubmits},
		{"completed tasks", acc.CompletedTasks, res.CompletedTasks},
		{"transfers", acc.Transfers, res.Transfers},
		{"spot preemptions", acc.Preempts, res.SpotPreemptions},
		{"fallback leases", acc.FallbackVMs, res.FallbackVMs},
	}
	for _, c := range counts {
		if c.got != c.want {
			return fmt.Errorf("oracle: %s: events %d, result %d", c.name, c.got, c.want)
		}
	}
	if !Close(acc.WastedSeconds, res.WastedSeconds) {
		return fmt.Errorf("oracle: wasted seconds: events %v, result %v",
			acc.WastedSeconds, res.WastedSeconds)
	}
	if !Close(acc.RentalCost, res.RentalCost) {
		return fmt.Errorf("oracle: rental cost: events %v, result %v",
			acc.RentalCost, res.RentalCost)
	}
	if !Close(acc.IdleSeconds, res.IdleTime) {
		return fmt.Errorf("oracle: idle time: events %v, result %v",
			acc.IdleSeconds, res.IdleTime)
	}
	if !Close(acc.FallbackPremium, res.FallbackPremium) {
		return fmt.Errorf("oracle: fallback premium: events %v, result %v",
			acc.FallbackPremium, res.FallbackPremium)
	}
	if !Close(acc.WarmIdleSeconds, res.WarmIdleSeconds) {
		return fmt.Errorf("oracle: warm idle: events %v, result %v",
			acc.WarmIdleSeconds, res.WarmIdleSeconds)
	}
	return nil
}
