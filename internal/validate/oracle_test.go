package validate

import (
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag/dagtest"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func TestPlanSimAcceptsCatalog(t *testing.T) {
	// The full differential oracle must pass on every paper workflow x
	// scenario x strategy: planner, simulator and event-stream accounting
	// agree on every quantity.
	for name, wf := range workflows.Paper() {
		for _, sc := range workload.Scenarios() {
			w := sc.Apply(wf, 7)
			for _, alg := range sched.Catalog() {
				s, err := alg.Schedule(w.Clone(), sched.DefaultOptions())
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", name, sc, alg.Name(), err)
				}
				if err := PlanSim(s); err != nil {
					t.Errorf("%s/%v/%s: %v", name, sc, alg.Name(), err)
				}
			}
		}
	}
}

func TestPlanSimHeldLeases(t *testing.T) {
	// Held reservations must reconcile through all three accountings:
	// planner bookkeeping, simulator billing and the event-stream ledger.
	w := dagtest.Chain(2, 1000)
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.VMs = append(s.VMs, &plan.VM{
		ID: plan.VMID(len(s.VMs)), Type: cloud.Medium,
		Region: cloud.USEastVirginia, Held: 42,
	})
	s.VMs[0].Held = s.VMs[0].Span() + cloud.BTU + 1
	if err := PlanSim(s); err != nil {
		t.Errorf("held leases diverge: %v", err)
	}
}

func TestPlanSimDetectsLateStart(t *testing.T) {
	// A schedule that plans a task later than the replay would run it is
	// statically sound (precedence allows slack) but must fail the
	// differential oracle: the simulator starts the task as soon as its
	// input arrives.
	w := dagtest.Chain(2, 1000)
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := PlanSim(s); err != nil {
		t.Fatalf("unmodified schedule rejected: %v", err)
	}
	vm := s.TaskVM(1)
	for i := range vm.Slots {
		if vm.Slots[i].Task == 1 {
			vm.Slots[i].Start += 100
			vm.Slots[i].End += 100
		}
	}
	s.Start[1] += 100
	s.End[1] += 100
	if err := Schedule(s); err != nil {
		t.Fatalf("shifted schedule should stay statically valid, got: %v", err)
	}
	err = PlanSim(s)
	if err == nil {
		t.Fatal("oracle accepted a schedule the replay disagrees with")
	}
	if !strings.Contains(err.Error(), "task 1") {
		t.Errorf("divergence blames the wrong quantity: %v", err)
	}
}

func TestAccountRejectsMalformedStream(t *testing.T) {
	cases := []struct {
		name   string
		events []obs.Event
	}{
		{"stop without start", []obs.Event{
			{Kind: obs.KindVMLeaseStop, T: 10, VM: 0, Value: 1},
		}},
		{"double open", []obs.Event{
			{Kind: obs.KindVMLeaseStart, T: 0, VM: 0},
			{Kind: obs.KindVMLeaseStart, T: 1, VM: 0},
		}},
		{"never stopped", []obs.Event{
			{Kind: obs.KindVMLeaseStart, T: 0, VM: 0},
		}},
		{"finish without start", []obs.Event{
			{Kind: obs.KindVMLeaseStart, T: 0, VM: 0},
			{Kind: obs.KindTaskFinish, T: 5, VM: 0, Task: 3},
			{Kind: obs.KindVMLeaseStop, T: 10, VM: 0, Value: 1},
		}},
	}
	for _, c := range cases {
		if _, err := Account(c.events); err == nil {
			t.Errorf("%s: malformed stream accepted", c.name)
		}
	}
}

func TestFaultReplayCrossChecks(t *testing.T) {
	// Under every fault preset and recovery mode the Result counters and
	// the event-derived ledger must agree, completed or not.
	wf := workflows.Paper()["Montage"]
	w := workload.Pareto.Apply(wf, 11)
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range fault.PresetNames() {
		fc, err := fault.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			fc.Seed = seed
			res, acc, err := FaultReplay(s, &fc)
			if err != nil {
				t.Errorf("%s/seed %d: %v", preset, seed, err)
				continue
			}
			if res == nil || acc == nil {
				t.Fatalf("%s/seed %d: nil result or accounting", preset, seed)
			}
		}
	}
}

func TestFaultReplayFailRecovery(t *testing.T) {
	// The fail-fast recovery aborts at the first fault; the ledger must
	// still reconcile the partial run (sunk leases, partial completion).
	w := dagtest.ForkJoin(6, 4000)
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fc := fault.Config{CrashRate: 0.5, TaskFailProb: 0.05, Recovery: fault.Fail, Seed: 3}
	aborted := false
	for seed := uint64(1); seed <= 20; seed++ {
		fc.Seed = seed
		res, _, err := FaultReplay(s, &fc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			aborted = true
		}
	}
	if !aborted {
		t.Error("no seed aborted under recovery=fail at CrashRate 0.5; cross-check never exercised")
	}
}
