package validate

import (
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dag/dagtest"
	"repro/internal/plan"
	"repro/internal/provision"
	"repro/internal/sched"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func validSchedule(t *testing.T) *plan.Schedule {
	t.Helper()
	w := dagtest.ForkJoin(3, 500)
	s, err := sched.Baseline().Schedule(w, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidScheduleAccepted(t *testing.T) {
	if err := Schedule(validSchedule(t)); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestAllCatalogSchedulesValidate(t *testing.T) {
	for name, wf := range workflows.Paper() {
		for _, sc := range workload.Scenarios() {
			w := sc.Apply(wf, 3)
			for _, alg := range sched.Catalog() {
				s, err := alg.Schedule(w.Clone(), sched.DefaultOptions())
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", name, sc, alg.Name(), err)
				}
				if err := Schedule(s); err != nil {
					t.Errorf("%s/%v/%s: %v", name, sc, alg.Name(), err)
				}
			}
		}
	}
}

func TestDetectsDoublePlacement(t *testing.T) {
	s := validSchedule(t)
	// Duplicate the first slot of VM 0 onto VM 1.
	slot := s.VMs[0].Slots[0]
	s.VMs[1].Slots = append(s.VMs[1].Slots, slot)
	if err := Schedule(s); err == nil {
		t.Error("double placement not detected")
	}
}

func TestDetectsPrecedenceViolation(t *testing.T) {
	s := validSchedule(t)
	// Yank the exit task (last slot of its VM) to start at 0.
	exit := s.Workflow.Exits()[0]
	vm := s.TaskVM(exit)
	for i := range vm.Slots {
		if vm.Slots[i].Task == exit {
			d := vm.Slots[i].End - vm.Slots[i].Start
			vm.Slots[i].Start = 0
			vm.Slots[i].End = d
			s.Start[exit] = 0
			s.End[exit] = d
		}
	}
	if err := Schedule(s); err == nil {
		t.Error("precedence violation not detected")
	}
}

func TestDetectsOverlap(t *testing.T) {
	w := dagtest.Chain(2, 100)
	b := plan.NewBuilder(w, cloud.NewPlatform(), cloud.USEastVirginia)
	vm := b.NewVM(cloud.Small)
	b.PlaceOn(0, vm)
	b.PlaceOn(1, vm)
	s := b.Done()
	// Force the second slot to overlap the first, keeping duration and
	// bookkeeping consistent so only exclusivity trips.
	vm2 := s.VMs[0]
	vm2.Slots[1].Start = 50
	vm2.Slots[1].End = 150
	s.Start[1] = 50
	s.End[1] = 150
	// Drop the edge effect: rebuild the workflow without the dependency so
	// precedence passes and overlap is the only violation.
	w2 := dag.New("pair")
	w2.AddTask("a", 100)
	w2.AddTask("b", 100)
	if err := w2.Freeze(); err != nil {
		t.Fatal(err)
	}
	s.Workflow = w2
	if err := Schedule(s); err == nil {
		t.Error("overlap not detected")
	}
}

func TestDetectsWrongDuration(t *testing.T) {
	s := validSchedule(t)
	s.VMs[0].Slots[0].End += 10
	s.End[s.VMs[0].Slots[0].Task] += 10
	if err := Schedule(s); err == nil {
		t.Error("wrong duration not detected")
	}
}

func TestBillingIncludesHeldEmptyVM(t *testing.T) {
	// A held-but-idle reservation (plan.VM.Held, no slots) is a paid lease:
	// Schedule.RentalCost includes it, so the validator's per-VM billing sum
	// must too, or every legitimately held schedule is rejected with a
	// phantom cost mismatch.
	s := validSchedule(t)
	s.VMs = append(s.VMs, &plan.VM{
		ID: plan.VMID(len(s.VMs)), Type: cloud.Small,
		Region: cloud.USEastVirginia, Held: 100,
	})
	if err := Schedule(s); err != nil {
		t.Errorf("held empty lease rejected: %v", err)
	}
	// A held tail on a busy VM (reservation past the last slot) must also
	// reconcile.
	s.VMs[0].Held = s.VMs[0].Span() + 2*cloud.BTU
	if err := Schedule(s); err != nil {
		t.Errorf("held lease tail rejected: %v", err)
	}
	// A prepaid held reservation bills nothing and still validates.
	s.VMs = append(s.VMs, &plan.VM{
		ID: plan.VMID(len(s.VMs)), Type: cloud.Small,
		Region: cloud.USEastVirginia, Held: 50, Prepaid: true,
	})
	if err := Schedule(s); err != nil {
		t.Errorf("prepaid held lease rejected: %v", err)
	}
}

func TestNotExceedLeaseProperty(t *testing.T) {
	// StartParNotExceed schedules must satisfy NotExceedLease on every
	// paper workload; StartParExceed deliberately violates it when a long
	// chain stacks BTUs.
	chain := dagtest.Chain(4, 1000)
	sNot, err := sched.NewHEFT(provision.StartParNotExceed, cloud.Small).Schedule(chain, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := NotExceedLease(sNot); err != nil {
		t.Errorf("StartParNotExceed violates its own invariant: %v", err)
	}
	sExc, err := sched.NewHEFT(provision.StartParExceed, cloud.Small).Schedule(chain.Clone(), sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := NotExceedLease(sExc); err == nil {
		t.Error("StartParExceed on a BTU-overflowing chain should violate NotExceedLease")
	}
}

// Property: the NotExceed strategies keep their lease invariant on random
// DAGs.
func TestQuickNotExceedInvariant(t *testing.T) {
	algs := []sched.Algorithm{
		sched.NewHEFT(provision.StartParNotExceed, cloud.Small),
		sched.NewAllPar(provision.AllParNotExceed, cloud.Small),
		sched.NewHEFT(provision.StartParNotExceed, cloud.Medium),
		sched.NewAllPar(provision.AllParNotExceed, cloud.Large),
	}
	f := func(seed uint64) bool {
		cfg := dagtest.DefaultConfig()
		cfg.MaxTasks = 25
		cfg.MaxData = 0
		w := dagtest.Random(seed, cfg)
		for _, alg := range algs {
			s, err := alg.Schedule(w.Clone(), sched.DefaultOptions())
			if err != nil {
				return false
			}
			if err := Schedule(s); err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
			if err := NotExceedLease(s); err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
