// Package validate checks schedule invariants that every scheduling
// algorithm in this repository must preserve, independent of how the
// schedule was built:
//
//   - every task placed exactly once, with end = start + work/speedup;
//   - precedence: no task starts before each predecessor's finish plus the
//     transfer time when they sit on different VMs;
//   - exclusivity: a VM never runs two tasks at once;
//   - billing: lease spans cover all slots and costs match the billing
//     model — the paper's whole-BTU bill, or the lease's market terms
//     (granularity, spot pricing) when a market is in play.
//
// Beyond the static invariants, the package hosts the repository's
// differential correctness harness (see PlanSim, FaultReplay and Account
// in oracle.go): every planned schedule can be replayed through the
// discrete-event simulator and the two accountings cross-checked quantity
// by quantity. It is used by the test suites, by the experiment driver in
// paranoid mode, by the service's debug path, and by the fuzzer in
// internal/fuzzcheck.
package validate

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/plan"
)

// Eps is the single float tolerance every correctness decision in this
// repository shares — schedule invariants, plan↔sim agreement, billing
// boundaries (cloud.BTUs) and the Fig. 4 target-square classification
// (metrics.Point.InTargetSquare). One tolerance, everywhere: schedules
// near the Fig. 4 axes must classify identically in the tests, the sweep
// driver, and the oracles, and a lease span must bill the same number of
// BTUs no matter which layer rounds it. The underlying constant lives in
// package cloud (the bottom of the dependency graph, so the billing code
// can use it too); this re-export is the canonical name.
const Eps = cloud.Eps

// Close reports whether two quantities agree within Eps, scaled by their
// magnitude (see cloud.Close). All oracle comparisons go through it.
func Close(a, b float64) bool { return cloud.Close(a, b) }

// lt reports whether a is less than b beyond the shared tolerance — the
// strict-inequality counterpart of Close, used for ordering invariants
// ("starts before its input is ready", "overlaps the previous slot").
func lt(a, b float64) bool { return a < b && !Close(a, b) }

// Schedule verifies all invariants and returns the first violation found,
// or nil when the schedule is sound.
func Schedule(s *plan.Schedule) error {
	if err := placement(s); err != nil {
		return err
	}
	if err := precedence(s); err != nil {
		return err
	}
	if err := exclusivity(s); err != nil {
		return err
	}
	return billing(s)
}

// placement checks the task-side bookkeeping: every task appears in exactly
// one slot of its assigned VM, with consistent times and the correct
// speed-up-scaled duration.
func placement(s *plan.Schedule) error {
	wf := s.Workflow
	n := wf.Len()
	if len(s.Placement) != n || len(s.Start) != n || len(s.End) != n {
		return fmt.Errorf("validate: bookkeeping sized %d/%d/%d for %d tasks",
			len(s.Placement), len(s.Start), len(s.End), n)
	}
	seen := make([]int, n)
	for _, vm := range s.VMs {
		for _, slot := range vm.Slots {
			id := int(slot.Task)
			if id < 0 || id >= n {
				return fmt.Errorf("validate: VM %d hosts unknown task %d", vm.ID, id)
			}
			seen[id]++
			if s.Placement[id] != vm.ID {
				return fmt.Errorf("validate: task %d in VM %d slots but Placement says %d",
					id, vm.ID, s.Placement[id])
			}
			if !Close(slot.Start, s.Start[id]) || !Close(slot.End, s.End[id]) {
				return fmt.Errorf("validate: task %d slot [%v,%v) disagrees with schedule [%v,%v)",
					id, slot.Start, slot.End, s.Start[id], s.End[id])
			}
			want := s.Platform.ExecTime(wf.Task(slot.Task).Work, vm.Type)
			// Compare end against start+want (absolute times) rather than
			// the subtracted duration: at large time offsets the rounding
			// error of End = Start+want exceeds any tolerance a duration-
			// space comparison could justify.
			if !Close(slot.End, slot.Start+want) {
				return fmt.Errorf("validate: task %d duration %v, want %v on %v",
					id, slot.End-slot.Start, want, vm.Type)
			}
		}
	}
	for id, c := range seen {
		if c != 1 {
			return fmt.Errorf("validate: task %d placed %d times", id, c)
		}
	}
	return nil
}

// precedence checks data dependencies including transfer delays.
func precedence(s *plan.Schedule) error {
	for _, e := range s.Workflow.Edges() {
		ready := s.End[e.From]
		from, to := s.TaskVM(e.From), s.TaskVM(e.To)
		if from.ID != to.ID {
			ready += s.Platform.TransferTime(e.Data, from.Type, to.Type)
		}
		if lt(s.Start[e.To], ready) {
			return fmt.Errorf("validate: task %d starts at %v before input from %d is ready at %v",
				e.To, s.Start[e.To], e.From, ready)
		}
	}
	return nil
}

// exclusivity checks that no VM overlaps two slots.
func exclusivity(s *plan.Schedule) error {
	for _, vm := range s.VMs {
		for i := 1; i < len(vm.Slots); i++ {
			prev, cur := vm.Slots[i-1], vm.Slots[i]
			if lt(cur.Start, prev.End) {
				return fmt.Errorf("validate: VM %d runs tasks %d and %d concurrently ([%v,%v) vs [%v,%v))",
					vm.ID, prev.Task, cur.Task, prev.Start, prev.End, cur.Start, cur.End)
			}
		}
	}
	return nil
}

// billing checks the BTU accounting. Held-but-idle leases (plan.VM.Held
// with no slots) are paid leases like any other and are included.
func billing(s *plan.Schedule) error {
	var cost, idle float64
	for _, vm := range s.VMs {
		if len(vm.Slots) == 0 && vm.Held <= 0 {
			continue // never leased: bills nothing
		}
		span := vm.Span()
		if span < -Eps {
			return fmt.Errorf("validate: VM %d has negative lease span %v", vm.ID, span)
		}
		if vm.Prepaid {
			// Private-cloud capacity: no bill, no BTU accounting.
			if vm.Cost() != 0 || vm.Idle() != 0 {
				return fmt.Errorf("validate: prepaid VM %d bills cost %v, idle %v",
					vm.ID, vm.Cost(), vm.Idle())
			}
			continue
		}
		// Market leases bill under their own terms (granularity, spot
		// price per interval); a nil lease is the legacy BTU bill. Both
		// wantCost and paid go through the single eps-guarded rounding in
		// cloud.Units, so a span on a billing boundary decides the same
		// way here as in the planner and the simulator.
		wantCost := vm.Lease.Cost(vm.LeaseStart(), span, vm.Type, vm.Region)
		if !Close(vm.Cost(), wantCost) {
			return fmt.Errorf("validate: VM %d cost %v, want %v", vm.ID, vm.Cost(), wantCost)
		}
		paid := vm.Lease.PaidSeconds(span)
		if lt(paid, vm.Busy()) {
			return fmt.Errorf("validate: VM %d busy %v exceeds paid %v", vm.ID, vm.Busy(), paid)
		}
		cost += vm.Cost()
		idle += vm.Idle()
	}
	if !Close(cost, s.RentalCost()) {
		return fmt.Errorf("validate: rental cost %v, VMs sum to %v", s.RentalCost(), cost)
	}
	if !Close(idle, s.IdleTime()) {
		return fmt.Errorf("validate: idle %v, VMs sum to %v", s.IdleTime(), idle)
	}
	return nil
}

// NotExceedLease verifies the defining property of the *NotExceed
// provisioning policies: whenever a VM hosts more than one task, no later
// slot pushes the lease past the BTU boundary that was already paid before
// the slot was appended. Algorithms built on Exceed policies will generally
// fail this check — it exists so tests can assert the distinction.
func NotExceedLease(s *plan.Schedule) error {
	for _, vm := range s.VMs {
		if vm.Prepaid {
			continue // no billing boundary to respect
		}
		for i := 1; i < len(vm.Slots); i++ {
			spanBefore := vm.Slots[i-1].End - vm.Slots[0].Start
			boundary := vm.Slots[0].Start + float64(cloud.BTUs(spanBefore))*cloud.BTU
			if lt(boundary, vm.Slots[i].End) {
				return fmt.Errorf("validate: VM %d slot %d ends at %v past paid boundary %v",
					vm.ID, i, vm.Slots[i].End, boundary)
			}
		}
	}
	return nil
}
