package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInstanceTypeProperties(t *testing.T) {
	cases := []struct {
		typ     InstanceType
		name    string
		suffix  string
		cores   int
		speedup float64
		bw      float64
	}{
		{Small, "small", "s", 1, 1.0, 1e9},
		{Medium, "medium", "m", 2, 1.6, 1e9},
		{Large, "large", "l", 4, 2.1, 10e9},
		{XLarge, "xlarge", "xl", 8, 2.7, 10e9},
	}
	for _, c := range cases {
		if c.typ.String() != c.name {
			t.Errorf("%v.String() = %q", c.typ, c.typ.String())
		}
		if c.typ.Suffix() != c.suffix {
			t.Errorf("%v.Suffix() = %q", c.typ, c.typ.Suffix())
		}
		if c.typ.Cores() != c.cores {
			t.Errorf("%v.Cores() = %d", c.typ, c.typ.Cores())
		}
		if c.typ.Speedup() != c.speedup {
			t.Errorf("%v.Speedup() = %v", c.typ, c.typ.Speedup())
		}
		if c.typ.Bandwidth() != c.bw {
			t.Errorf("%v.Bandwidth() = %v", c.typ, c.typ.Bandwidth())
		}
	}
}

func TestFasterSlower(t *testing.T) {
	if f, ok := Small.Faster(); !ok || f != Medium {
		t.Errorf("Small.Faster() = %v, %v", f, ok)
	}
	if f, ok := XLarge.Faster(); ok || f != XLarge {
		t.Errorf("XLarge.Faster() = %v, %v", f, ok)
	}
	if s, ok := XLarge.Slower(); !ok || s != Large {
		t.Errorf("XLarge.Slower() = %v, %v", s, ok)
	}
	if s, ok := Small.Slower(); ok || s != Small {
		t.Errorf("Small.Slower() = %v, %v", s, ok)
	}
}

func TestParseInstanceType(t *testing.T) {
	for _, typ := range InstanceTypes() {
		for _, s := range []string{typ.String(), typ.Suffix()} {
			got, err := ParseInstanceType(s)
			if err != nil || got != typ {
				t.Errorf("ParseInstanceType(%q) = %v, %v", s, got, err)
			}
		}
	}
	if _, err := ParseInstanceType("huge"); err == nil {
		t.Error("ParseInstanceType(huge) succeeded")
	}
}

func TestTableIIPrices(t *testing.T) {
	// Spot-check Table II verbatim.
	cases := []struct {
		r     Region
		typ   InstanceType
		price float64
	}{
		{USEastVirginia, Small, 0.08},
		{USEastVirginia, XLarge, 0.64},
		{USWestCalifornia, Medium, 0.18},
		{EUDublin, Large, 0.34},
		{AsiaSingapore, Small, 0.085},
		{AsiaTokyo, XLarge, 0.736},
		{SASaoPaulo, Medium, 0.230},
	}
	for _, c := range cases {
		if got := c.r.Price(c.typ); got != c.price {
			t.Errorf("%v price of %v = %v, want %v", c.r, c.typ, got, c.price)
		}
	}
	if got := SASaoPaulo.TransferOutPrice(); got != 0.25 {
		t.Errorf("Sao Paulo transfer price = %v", got)
	}
	if got := USEastVirginia.TransferOutPrice(); got != 0.12 {
		t.Errorf("Virginia transfer price = %v", got)
	}
}

func TestPricesDoubleWithType(t *testing.T) {
	// In every region each type costs exactly twice the previous one.
	for _, r := range Regions() {
		for _, typ := range []InstanceType{Medium, Large, XLarge} {
			slower, _ := typ.Slower()
			if math.Abs(r.Price(typ)-2*r.Price(slower)) > 1e-9 {
				t.Errorf("%v: price(%v) != 2*price(%v)", r, typ, slower)
			}
		}
	}
}

func TestParseRegion(t *testing.T) {
	for _, r := range Regions() {
		got, err := ParseRegion(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRegion("mars"); err == nil {
		t.Error("ParseRegion(mars) succeeded")
	}
}

func TestExecTime(t *testing.T) {
	p := NewPlatform()
	if got := p.ExecTime(1000, Small); got != 1000 {
		t.Errorf("ExecTime small = %v", got)
	}
	if got := p.ExecTime(1000, Medium); math.Abs(got-625) > 1e-9 {
		t.Errorf("ExecTime medium = %v, want 625", got)
	}
	if got := p.ExecTime(2700, XLarge); math.Abs(got-1000) > 1e-9 {
		t.Errorf("ExecTime xlarge = %v, want 1000", got)
	}
}

func TestTransferTime(t *testing.T) {
	p := NewPlatform()
	if got := p.TransferTime(0, Small, Small); got != 0 {
		t.Errorf("zero-size transfer = %v", got)
	}
	// 1 Gbit/s link: 1 GB = 8 Gbit -> 8 s + latency.
	oneGB := float64(1 << 30)
	want := oneGB*8/1e9 + p.Latency
	if got := p.TransferTime(oneGB, Small, Small); math.Abs(got-want) > 1e-9 {
		t.Errorf("1GB small-small = %v, want %v", got, want)
	}
	// Mixed links are limited by the slower 1 Gb side.
	if got := p.TransferTime(oneGB, Small, Large); math.Abs(got-want) > 1e-9 {
		t.Errorf("1GB small-large = %v, want %v", got, want)
	}
	// 10 Gb links are 10x faster.
	want10 := oneGB*8/10e9 + p.Latency
	if got := p.TransferTime(oneGB, Large, XLarge); math.Abs(got-want10) > 1e-9 {
		t.Errorf("1GB large-xlarge = %v, want %v", got, want10)
	}
}

func TestTransferCost(t *testing.T) {
	p := NewPlatform()
	twoGB := float64(2 << 30)
	if got := p.TransferCost(twoGB, EUDublin, EUDublin); got != 0 {
		t.Errorf("intra-region transfer cost = %v", got)
	}
	// 2 GB out of Dublin at 0.12/GB.
	if got := p.TransferCost(twoGB, EUDublin, USEastVirginia); math.Abs(got-0.24) > 1e-9 {
		t.Errorf("2GB Dublin->Virginia = %v, want 0.24", got)
	}
	// Below the 1 GB band edge: free.
	if got := p.TransferCost(1<<29, EUDublin, USEastVirginia); got != 0 {
		t.Errorf("0.5GB inter-region = %v, want 0", got)
	}
	// Exactly 1 GB: still free (band is exclusive at the bottom).
	if got := p.TransferCost(1<<30, EUDublin, USEastVirginia); got != 0 {
		t.Errorf("1GB inter-region = %v, want 0", got)
	}
	// Above 10 TB: outside the modelled band.
	if got := p.TransferCost(11*(1<<40), EUDublin, USEastVirginia); got != 0 {
		t.Errorf("11TB inter-region = %v, want 0", got)
	}
}

func TestBTUs(t *testing.T) {
	cases := []struct {
		span float64
		want int
	}{
		{0, 1}, {1, 1}, {3600, 1}, {3600.001, 2}, {7200, 2}, {7201, 3},
	}
	for _, c := range cases {
		if got := BTUs(c.span); got != c.want {
			t.Errorf("BTUs(%v) = %d, want %d", c.span, got, c.want)
		}
	}
}

// TestBTUsBoundary pins the eps guard: float error must never bill an
// extra full BTU at an exact k·BTU boundary, while genuinely longer
// leases still roll over.
func TestBTUsBoundary(t *testing.T) {
	for k := 1; k <= 4; k++ {
		exact := float64(k) * BTU
		for _, c := range []struct {
			span float64
			want int
		}{
			{exact, k},
			{exact - 1e-9, k},
			{exact + 1e-9, k}, // float noise over the boundary: still k
			{exact - 1e-3, k},
			{exact + 1e-3, k + 1}, // a real overrun rolls over
		} {
			if got := BTUs(c.span); got != c.want {
				t.Errorf("BTUs(%v) [k=%d] = %d, want %d", c.span, k, got, c.want)
			}
		}
	}
	// The motivating case: a lease assembled from n tasks of BTU/n seconds
	// each sums to "exactly" one BTU only up to float error; the guard must
	// absorb the error for any workflow size.
	for n := 1; n <= 64; n++ {
		e := BTU / float64(n)
		var span float64
		for i := 0; i < n; i++ {
			span += e
		}
		if got := BTUs(span); got != 1 {
			t.Errorf("BTUs(sum of %d x BTU/%d = %v) = %d, want 1", n, n, span, got)
		}
	}
}

func TestBTUsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	BTUs(-1)
}

// TestBTUsToleratesFloatNoiseBelowZero: a span of -1e-12 is a zero-length
// lease with float noise, not a modelling error.
func TestBTUsToleratesFloatNoiseBelowZero(t *testing.T) {
	if got := BTUs(-1e-12); got != 1 {
		t.Errorf("BTUs(-1e-12) = %d, want 1", got)
	}
}

func TestClose(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1 + 1e-10, true},
		{1, 1 + 1e-8, false},
		{1e6, 1e6 + 1e-4, true},  // relative: 1e-4 < Eps·1e6
		{1e6, 1e6 + 1e-2, false}, // 1e-2 > Eps·1e6
		{-5, 5, false},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b); got != c.want {
			t.Errorf("Close(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLeaseCost(t *testing.T) {
	// 2.5 hours on a Virginia medium: 3 BTUs at 0.16.
	if got := LeaseCost(2.5*3600, Medium, USEastVirginia); math.Abs(got-0.48) > 1e-9 {
		t.Errorf("LeaseCost = %v, want 0.48", got)
	}
	// A started-but-instantly-stopped VM still pays one BTU.
	if got := LeaseCost(0, Small, USEastVirginia); got != 0.08 {
		t.Errorf("LeaseCost(0) = %v, want 0.08", got)
	}
}

// Property: lease cost is monotone in span, and speedups strictly increase
// with type while per-speedup value decreases (the "large instances don't
// pay off" observation of Sect. V).
func TestQuickLeaseCostMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a%1000000), float64(b%1000000)
		if x > y {
			x, y = y, x
		}
		return LeaseCost(x, Small, USEastVirginia) <= LeaseCost(y, Small, USEastVirginia)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupPerDollarDecreases(t *testing.T) {
	// The paper's economics: speedup/price strictly falls with size, which
	// is why large instances rarely win the gain/cost trade-off.
	r := USEastVirginia
	prev := math.Inf(1)
	for _, typ := range InstanceTypes() {
		ratio := typ.Speedup() / r.Price(typ)
		if ratio >= prev {
			t.Errorf("speedup-per-dollar not decreasing at %v: %v >= %v", typ, ratio, prev)
		}
		prev = ratio
	}
}

func TestBTUConstant(t *testing.T) {
	if BTU != 3600 {
		t.Errorf("BTU = %v, want 3600", BTU)
	}
}
