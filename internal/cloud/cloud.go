// Package cloud models the IaaS platform of the paper's Sect. IV-A: Amazon
// EC2 with its seven 2012 regions, four on-demand instance types billed per
// Billing Time Unit (BTU = 3600 s), the Stata/MP-style speed-ups the paper
// assigns to each type, 1/10 Gb network links, and per-GB outbound transfer
// pricing between regions.
package cloud

import (
	"fmt"
	"math"
)

// BTU is the Billing Time Unit: VM rental is charged in whole BTUs. The
// paper uses Amazon's one-hour unit.
const BTU = 3600.0 // seconds

// InstanceType enumerates the EC2 on-demand types used in the paper.
type InstanceType int

// The four instance types of Table II. Their order is their speed order,
// so Faster/Slower can step along the enum.
const (
	Small InstanceType = iota
	Medium
	Large
	XLarge
	numInstanceTypes
)

// instanceInfo holds the static per-type characteristics (paper Sect. IV-A).
var instanceInfo = [numInstanceTypes]struct {
	name      string
	suffix    string
	cores     int
	speedup   float64
	bandwidth float64 // link speed in bits per second
}{
	{"small", "s", 1, 1.0, 1e9},
	{"medium", "m", 2, 1.6, 1e9},
	{"large", "l", 4, 2.1, 10e9},
	{"xlarge", "xl", 8, 2.7, 10e9},
}

// InstanceTypes lists all types from slowest to fastest.
func InstanceTypes() []InstanceType {
	return []InstanceType{Small, Medium, Large, XLarge}
}

// String returns the full type name ("small", ..., "xlarge").
func (t InstanceType) String() string {
	if t < 0 || t >= numInstanceTypes {
		return fmt.Sprintf("InstanceType(%d)", int(t))
	}
	return instanceInfo[t].name
}

// Suffix returns the short label the paper appends to strategy names
// ("-s", "-m", "-l").
func (t InstanceType) Suffix() string { return instanceInfo[t].suffix }

// Cores returns the number of virtual cores.
func (t InstanceType) Cores() int { return instanceInfo[t].cores }

// Speedup returns the execution speed-up relative to Small (1, 1.6, 2.1,
// 2.7 — the Stata/MP figures quoted in the paper).
func (t InstanceType) Speedup() float64 { return instanceInfo[t].speedup }

// Bandwidth returns the network link speed in bits per second (1 Gb for
// small/medium, 10 Gb for large/xlarge).
func (t InstanceType) Bandwidth() float64 { return instanceInfo[t].bandwidth }

// Faster returns the next faster type and true, or the receiver and false
// when the receiver is already the fastest.
func (t InstanceType) Faster() (InstanceType, bool) {
	if t+1 < numInstanceTypes {
		return t + 1, true
	}
	return t, false
}

// Slower returns the next slower type and true, or the receiver and false
// when the receiver is already the slowest.
func (t InstanceType) Slower() (InstanceType, bool) {
	if t > 0 {
		return t - 1, true
	}
	return t, false
}

// ParseInstanceType resolves both full names and the paper's suffixes.
func ParseInstanceType(s string) (InstanceType, error) {
	for _, t := range InstanceTypes() {
		if s == instanceInfo[t].name || s == instanceInfo[t].suffix {
			return t, nil
		}
	}
	return 0, fmt.Errorf("cloud: unknown instance type %q", s)
}

// Region identifies one EC2 region.
type Region int

// The seven regions of Table II.
const (
	USEastVirginia Region = iota
	USWestOregon
	USWestCalifornia
	EUDublin
	AsiaSingapore
	AsiaTokyo
	SASaoPaulo
	numRegions
)

// regionInfo holds Table II verbatim: hourly on-demand price per type (USD)
// and the per-GB outbound transfer price.
var regionInfo = [numRegions]struct {
	name     string
	prices   [numInstanceTypes]float64
	transfer float64
}{
	{"us-east-virginia", [numInstanceTypes]float64{0.08, 0.16, 0.32, 0.64}, 0.12},
	{"us-west-oregon", [numInstanceTypes]float64{0.08, 0.16, 0.32, 0.64}, 0.12},
	{"us-west-california", [numInstanceTypes]float64{0.09, 0.18, 0.36, 0.72}, 0.12},
	{"eu-dublin", [numInstanceTypes]float64{0.085, 0.17, 0.34, 0.68}, 0.12},
	{"asia-singapore", [numInstanceTypes]float64{0.085, 0.17, 0.34, 0.68}, 0.19},
	{"asia-tokyo", [numInstanceTypes]float64{0.092, 0.184, 0.368, 0.736}, 0.201},
	{"sa-sao-paulo", [numInstanceTypes]float64{0.115, 0.230, 0.460, 0.920}, 0.25},
}

// Regions lists all regions in Table II order.
func Regions() []Region {
	out := make([]Region, numRegions)
	for i := range out {
		out[i] = Region(i)
	}
	return out
}

// String returns the region's name.
func (r Region) String() string {
	if r < 0 || r >= numRegions {
		return fmt.Sprintf("Region(%d)", int(r))
	}
	return regionInfo[r].name
}

// ParseRegion resolves a region by name.
func ParseRegion(s string) (Region, error) {
	for _, r := range Regions() {
		if s == regionInfo[r].name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("cloud: unknown region %q", s)
}

// Price returns the on-demand list price per BTU for a type in a region,
// in USD — the constant Table II rate card. It is NOT "the price a lease
// pays": spot leases, finer billing granularities and time-varying rates
// (internal/market) all layer on top of this base. Callers that care
// about the price in effect at a point in simulated time should go
// through PriceAt instead of assuming this constant.
func (r Region) Price(t InstanceType) float64 {
	return regionInfo[r].prices[t]
}

// PriceAt returns the on-demand price per BTU in effect at absolute
// simulated time at. Today the rate card is constant, so PriceAt equals
// Price for every at — the function exists as the seam the market layer
// (internal/market) prices leases through: spot traces multiply this
// base, and a future time-of-day or demand model slots in here without
// touching any billing call site.
func PriceAt(t InstanceType, r Region, at float64) float64 {
	_ = at // constant rate card (see Region.Price); the parameter is the seam
	return r.Price(t)
}

// TransferOutPrice returns the per-GB price for data leaving the region.
func (r Region) TransferOutPrice() float64 {
	return regionInfo[r].transfer
}

// Platform bundles the pricing model with the network model for one
// experiment. The zero value is not useful; use NewPlatform.
type Platform struct {
	// Latency is the one-way network latency applied to every inter-VM
	// transfer, in seconds.
	Latency float64
	// FreeTransferBytes is the lower edge of the billable transfer band:
	// Amazon bills transfers only above 1 GB per month (paper Sect. IV-A).
	FreeTransferBytes float64
	// MaxBilledTransferBytes is the upper edge of the billable band (10 TB).
	MaxBilledTransferBytes float64
}

// NewPlatform returns a Platform with the paper's defaults.
func NewPlatform() *Platform {
	return &Platform{
		Latency:                0.1,
		FreeTransferBytes:      1 << 30,        // 1 GB
		MaxBilledTransferBytes: 10 * (1 << 40), // 10 TB
	}
}

// ExecTime returns the execution time of a task with the given reference
// work (seconds on Small) on an instance of type t.
func (p *Platform) ExecTime(work float64, t InstanceType) float64 {
	return work / t.Speedup()
}

// TransferTime returns the store-and-forward transfer time of size bytes
// between two VM types: size/bandwidth + latency, with bandwidth the
// narrower of the two links (paper Sect. IV-A). Zero bytes transfer in zero
// time (same-VM or control-only edges short-circuit before networking).
func (p *Platform) TransferTime(size float64, from, to InstanceType) float64 {
	if size <= 0 {
		return 0
	}
	bw := math.Min(from.Bandwidth(), to.Bandwidth())
	return (size*8)/bw + p.Latency
}

// TransferCost returns the monetary cost of moving size bytes from one
// region to another. Intra-region transfers are free; inter-region
// transfers are billed per GB at the source region's outbound price, inside
// the (1 GB, 10 TB] monthly band.
func (p *Platform) TransferCost(size float64, from, to Region) float64 {
	if from == to || size <= 0 {
		return 0
	}
	if size <= p.FreeTransferBytes || size > p.MaxBilledTransferBytes {
		return 0
	}
	return size / (1 << 30) * from.TransferOutPrice()
}

// Eps is the repository's single float-comparison tolerance. It lives
// here because this package sits at the bottom of the dependency graph;
// internal/validate re-exports it as validate.Eps, the canonical name the
// rest of the repository (metrics, the oracles, the tests) uses. Keep the
// two spellings identical: billing boundaries, target-square membership
// and plan↔sim agreement must all be decided by the same tolerance, or a
// schedule can be billed one way by the planner and another by the
// simulator, or classified differently by a test and the sweep driver.
const Eps = 1e-9

// Close reports whether a and b agree within Eps, scaled by their
// magnitude: |a−b| ≤ Eps·max(1, |a|, |b|). The relative term matters for
// large simulated times (hundreds of simulated days), where accumulated
// float error legitimately exceeds an absolute 1e-9 while the values are
// still equal for every modelling purpose.
func Close(a, b float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		m = 1
	}
	return math.Abs(a-b) <= Eps*m
}

// BTUs returns the number of whole billing units covering span seconds. A
// zero-length lease still costs one BTU once the VM was started.
//
// The count is eps-guarded: a span that is an exact BTU multiple up to
// float error (e.g. a lease of exactly 2·3600 s assembled from task
// durations that sum a hair over) bills the exact multiple, not an extra
// full BTU. The guard is relative (Eps·max(1, span/BTU) in BTU units), so
// it holds at any lease length.
func BTUs(span float64) int { return Units(span, BTU) }

// Units returns the number of whole billing units of the given length
// (seconds) covering span seconds — BTUs generalized to the finer billing
// granularities of internal/market (per-minute, per-second). The
// eps-guard is the same relative guard in unit space (Eps·max(1,
// span/unit)), so a span landing on a billing boundary up to float error
// bills the exact multiple under every granularity, decided by the single
// shared tolerance. A zero-length lease still bills one unit once the VM
// was started.
func Units(span, unit float64) int {
	if unit <= 0 {
		panic(fmt.Sprintf("cloud: non-positive billing unit %v", unit))
	}
	if span < 0 {
		if span < -Eps {
			panic(fmt.Sprintf("cloud: negative lease span %v", span))
		}
		span = 0 // float noise around a zero-length lease
	}
	x := span / unit
	guard := Eps
	if x > 1 {
		guard = Eps * x
	}
	n := int(math.Ceil(x - guard))
	if n == 0 {
		n = 1
	}
	return n
}

// LeaseCost returns the rental price for a VM of type t in region r that
// was held for span seconds.
func LeaseCost(span float64, t InstanceType, r Region) float64 {
	return float64(BTUs(span)) * r.Price(t)
}
