// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the hot paths and ablations of the design choices
// DESIGN.md calls out. Each Benchmark{Figure,Table}* target performs the
// complete computation behind the corresponding artifact; run
//
//	go test -bench=. -benchmem
//
// to both time them and (via -v logging on -benchtime=1x) inspect the
// regenerated content.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dax"
	"repro/internal/eventq"
	"repro/internal/frontier"
	"repro/internal/market"
	"repro/internal/ndwf"
	"repro/internal/online"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/provision"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workflows"
	"repro/internal/workload"
)

// sweepOnce caches the paper sweep across benchmarks that only analyze it.
var cachedSweep *core.Sweep

func paperSweep(b *testing.B) *core.Sweep {
	b.Helper()
	if cachedSweep == nil {
		s, err := core.Run(core.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		cachedSweep = s
	}
	return cachedSweep
}

// BenchmarkFigure1Provisioning regenerates Fig. 1: the five provisioning
// policies scheduling the CSTEM sub-workflow, rendered as Gantt charts.
func BenchmarkFigure1Provisioning(b *testing.B) {
	wf := workflows.Fig1SubWorkflow()
	for i := 0; i < b.N; i++ {
		for _, kind := range provision.Kinds() {
			var alg sched.Algorithm
			switch kind {
			case provision.AllParExceed, provision.AllParNotExceed:
				alg = sched.NewAllPar(kind, cloud.Small)
			default:
				alg = sched.NewHEFT(kind, cloud.Small)
			}
			s, err := alg.Schedule(wf, sched.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			_ = trace.Gantt(s, 90)
		}
	}
}

// BenchmarkFigure3ParetoCDF regenerates Fig. 3: sampling the Pareto
// execution-time distribution and plotting its CDF.
func BenchmarkFigure3ParetoCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Figure3(42, 100000)
	}
}

// BenchmarkFigure4GainLoss regenerates Fig. 4: for each workflow pane, the
// 19-strategy gain/loss scatter under the Pareto scenario.
func BenchmarkFigure4GainLoss(b *testing.B) {
	for _, wf := range workflows.PaperNames() {
		b.Run(wf, func(b *testing.B) {
			structural := workflows.Paper()[wf]
			for i := 0; i < b.N; i++ {
				s, err := core.Run(core.Config{
					Seed:          42,
					Workflows:     map[string]*dag.Workflow{wf: structural},
					WorkflowOrder: []string{wf},
					Scenarios:     []workload.Scenario{workload.Pareto},
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = report.Figure4(s, wf)
			}
		})
	}
}

// BenchmarkFigure5IdleTime regenerates Fig. 5: the idle-time bars per
// workflow pane.
func BenchmarkFigure5IdleTime(b *testing.B) {
	for _, wf := range workflows.PaperNames() {
		b.Run(wf, func(b *testing.B) {
			structural := workflows.Paper()[wf]
			for i := 0; i < b.N; i++ {
				s, err := core.Run(core.Config{
					Seed:          42,
					Workflows:     map[string]*dag.Workflow{wf: structural},
					WorkflowOrder: []string{wf},
					Scenarios:     []workload.Scenario{workload.Pareto},
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = report.Figure5(s, wf)
			}
		})
	}
}

// BenchmarkTable1Policies regenerates Table I (the static policy pairing).
func BenchmarkTable1Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Table1()
	}
}

// BenchmarkTable2Prices regenerates Table II from the platform model.
func BenchmarkTable2Prices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = report.Table2()
	}
}

// BenchmarkTable3Classification regenerates Table III: the full sweep plus
// the gain/savings classification with equal-outcome grouping.
func BenchmarkTable3Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.Run(core.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Table3(s)
	}
}

// BenchmarkTable4Fluctuation regenerates Table IV: the AllPar[Not]Exceed
// loss intervals and stable-gain summary.
func BenchmarkTable4Fluctuation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.Run(core.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Table4(s)
	}
}

// BenchmarkTable5Recommendations regenerates Table V: the per-goal
// strategy recommendations.
func BenchmarkTable5Recommendations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.Run(core.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := report.Table5(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullParanoidSweep times the complete grid with validation and
// simulator cross-checking enabled — the most expensive end-to-end path.
func BenchmarkFullParanoidSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.Config{Seed: 42, Paranoid: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSVExport times dumping the full grid as CSV.
func BenchmarkCSVExport(b *testing.B) {
	s := paperSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.WriteSweepCSV(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkHEFTRanks times upward-rank computation on the Montage DAG.
func BenchmarkHEFTRanks(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 42)
	m := dag.CostModel{Exec: func(t dag.Task) float64 { return t.Work }, Comm: dag.ZeroComm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wf.UpwardRanks(m)
	}
}

// BenchmarkScheduleMontage times one HEFT + StartParNotExceed schedule of
// the 24-task Montage.
func BenchmarkScheduleMontage(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 42)
	alg := sched.NewHEFT(provision.StartParNotExceed, cloud.Small)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Schedule(wf, sched.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleLargeMapReduce times AllPar1LnSDyn on a 100-mapper
// MapReduce — the level-scheduler's stress case.
func BenchmarkScheduleLargeMapReduce(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.MapReduce(100, 10), 42)
	alg := sched.NewAllPar1LnSDyn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Schedule(wf, sched.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimReplay times the discrete-event execution of a schedule.
func BenchmarkSimReplay(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.MapReduce(100, 10), 42)
	s, err := sched.Baseline().Schedule(wf, sched.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(s, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventQueue times raw heap throughput.
func BenchmarkEventQueue(b *testing.B) {
	r := stats.NewRNG(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q eventq.Queue
		for _, t := range times {
			q.Push(t, nil)
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

// BenchmarkParetoSampling times the workload generator.
func BenchmarkParetoSampling(b *testing.B) {
	d := workload.ExecDist()
	r := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationBootTime contrasts the paper's pre-booted assumption
// with simulated on-demand boots of two minutes.
func BenchmarkAblationBootTime(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 42)
	s, err := sched.NewAllPar(provision.AllParExceed, cloud.Small).Schedule(wf, sched.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, boot := range []float64{0, 120} {
		name := "preboot"
		if boot > 0 {
			name = "boot120s"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(s, sim.Config{BootTime: boot}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRegion re-prices the sweep in the cheapest and the most
// expensive region: relative results (the paper's percentages) are
// region-invariant because all prices scale together.
func BenchmarkAblationRegion(b *testing.B) {
	for _, region := range []cloud.Region{cloud.USEastVirginia, cloud.SASaoPaulo} {
		b.Run(region.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.Config{Seed: 42, Region: region}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Benches for the systems beyond the paper's headline grid ---

// BenchmarkFrontierCell times one boundary-exploration grid cell (all 19
// strategies on one synthetic workflow, averaged over 2 draws).
func BenchmarkFrontierCell(b *testing.B) {
	cfg := frontier.Config{
		Widths: []int{8},
		Depth:  3,
		Alphas: []float64{2.0},
		Scales: []float64{0.5},
		Seed:   1,
		Reps:   2,
	}
	for i := 0; i < b.N; i++ {
		if _, err := frontier.Explore(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineStream times the auto-scaled execution of 100 workflow
// instances.
func BenchmarkOnlineStream(b *testing.B) {
	cfg := online.Config{
		MeanInterarrival: 120,
		Instances:        100,
		Instance: func(i int, r *stats.RNG) *dag.Workflow {
			return workload.Pareto.Apply(workflows.CSTEM(), r.Uint64())
		},
		Type:   cloud.Small,
		Region: cloud.USEastVirginia,
		MaxVMs: 32,
		Seed:   1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := online.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// onlineSoakInstances is the soak benchmark's stream length, mirrored by
// cmd/bench's instances/sec gate (onlineBenchInstances there).
const onlineSoakInstances = 10_000

// BenchmarkOnlineSoak times the continuous-traffic harness at soak scale:
// a heavy-tail template mix with cold starts and per-second market
// billing, the configuration whose instances/sec rate scripts/bench.sh
// gates against the committed baseline.
func BenchmarkOnlineSoak(b *testing.B) {
	order, err := ndwf.Named("order")
	if err != nil {
		b.Fatal(err)
	}
	montage, err := ndwf.Named("montage2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := online.Config{
		MeanInterarrival: 20,
		Instances:        onlineSoakInstances,
		Mix: []online.MixEntry{
			{Template: order, Weight: 3},
			{Template: montage, Weight: 1},
		},
		Type:   cloud.Small,
		Region: cloud.USEastVirginia,
		MaxVMs: 256,
		Market: &market.Model{
			Gran: market.PerSecond,
			Cold: market.ColdStart{Dist: "fixed", Mean: 45},
			Seed: 1,
		},
		Deadline: 7200,
		Seed:     42,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := online.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNdwfDistribution times sampling + scheduling 100 realized
// instances of a non-deterministic template.
func BenchmarkNdwfDistribution(b *testing.B) {
	tpl := ndwf.Template{
		Name: "bench",
		Root: ndwf.Seq{
			ndwf.Task{Name: "in", Work: 100},
			ndwf.Par{ndwf.Task{Name: "a", Work: 700}, ndwf.Task{Name: "b", Work: 500}},
			ndwf.Loop{Body: ndwf.Task{Name: "retry", Work: 300}, Repeat: 0.4, Max: 4},
		},
	}
	alg := sched.NewAllPar1LnS()
	for i := 0; i < b.N; i++ {
		if _, err := ndwf.Distribution(tpl, alg, sched.DefaultOptions(), 100, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementFFD times packing 1000 VM demands onto 32-core PMs.
func BenchmarkPlacementFFD(b *testing.B) {
	r := stats.NewRNG(1)
	demands := make([]placement.VMDemand, 1000)
	for i := range demands {
		demands[i] = placement.VMDemand{ID: plan.VMID(i), Cores: 1 << r.Intn(4)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Pack(demands, 32, placement.FirstFitDecreasing); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAXRoundTrip times serializing and re-parsing the Montage DAG
// through the Pegasus DAX format.
func BenchmarkDAXRoundTrip(b *testing.B) {
	wf := workflows.PaperMontage()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := dax.Encode(&buf, wf); err != nil {
			b.Fatal(err)
		}
		if _, err := dax.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSeedStability times the 5-seed robustness analysis.
func BenchmarkMultiSeedStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.MultiSeed(core.Config{}, 1, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalability times the level scheduler across workflow sizes to
// expose the planner's growth rate.
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{30, 120, 480} {
		wf := workload.Pareto.Apply(workflows.MapReduce(n/3, n/6), 1)
		alg := sched.NewAllPar(provision.AllParExceed, cloud.Small)
		b.Run(fmt.Sprintf("tasks-%d", wf.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Schedule(wf, sched.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPCHClustering times path clustering plus scheduling on the
// data-heavy MapReduce.
func BenchmarkPCHClustering(b *testing.B) {
	wf := workload.DataHeavy.Apply(workflows.PaperMapReduce(), 1)
	alg := sched.NewPCH(cloud.Small)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Schedule(wf, sched.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHCOCDeadlineCurve times one hybrid-cloud deadline search.
func BenchmarkHCOCDeadlineCurve(b *testing.B) {
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewHCOC(2, 8000, cloud.Large).Schedule(wf, sched.DefaultOptions()); err != nil && err != sched.ErrDeadlineUnreachable {
			b.Fatal(err)
		}
	}
}

// BenchmarkSLAEvaluate times a 100-instance deadline-probability estimate.
func BenchmarkSLAEvaluate(b *testing.B) {
	tpl := ndwf.Template{
		Name: "bench",
		Root: ndwf.Seq{
			ndwf.Task{Name: "a", Work: 600},
			ndwf.Loop{Body: ndwf.Task{Name: "retry", Work: 400}, Repeat: 0.5, Max: 4},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sla.Evaluate(tpl, sched.Baseline(), sched.DefaultOptions(), 1500, 100, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceScheduleCold times a full uncached POST /v1/schedule
// round trip — admission, planning, baseline comparison, encoding —
// varying the seed each iteration so every request misses the cache.
func BenchmarkServiceScheduleCold(b *testing.B) {
	svc := service.New(service.Config{CacheSize: 1})
	defer svc.Close()
	h := svc.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"workflow_name":"montage24","strategy":"AllParExceed-m","scenario":"Pareto","seed":%d}`, i)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/schedule", strings.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}

// BenchmarkServiceScheduleCached times the hit path: the same request
// repeated, answered from the sharded LRU without touching the planner.
func BenchmarkServiceScheduleCached(b *testing.B) {
	svc := service.New(service.Config{})
	defer svc.Close()
	h := svc.Handler()
	const body = `{"workflow_name":"montage24","strategy":"AllParExceed-m","scenario":"Pareto","seed":7}`
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("POST", "/v1/schedule", strings.NewReader(body)))
	if warm.Code != 200 {
		b.Fatalf("warmup status %d: %s", warm.Code, warm.Body.Bytes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/schedule", strings.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
	if svc.Metrics().CacheHits < uint64(b.N) {
		b.Fatalf("cache hits %d < %d iterations", svc.Metrics().CacheHits, b.N)
	}
}
