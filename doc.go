// Package repro is a from-scratch Go reproduction of
//
//	Frincu, Genaud, Gossa: "Comparing Provisioning and Scheduling
//	Strategies for Workflows on Clouds", CloudFlow @ IEEE IPDPS 2013.
//
// The library simulates scheduling DAG workflows on an EC2-like IaaS
// cloud under five VM provisioning policies (OneVMperTask,
// StartPar[Not]Exceed, AllPar[Not]Exceed) combined with seven allocation
// algorithms (HEFT, CPA-Eager, Gain, AllPar[Not]Exceed, AllPar1LnS,
// AllPar1LnSDyn), and reproduces every table and figure of the paper's
// evaluation.
//
// Entry points:
//
//   - internal/core: the experiment driver (sweep + Table III/IV/V
//     analysis)
//   - internal/sched: the 19-strategy catalog
//   - internal/sim: the discrete-event execution simulator
//   - cmd/wfsim, cmd/sweep, cmd/figures, cmd/wfgen: the CLI tools
//   - examples/: runnable walkthroughs
//
// See README.md for a guided tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate each table and figure.
package repro
