// End-to-end integration: drive the whole pipeline the way a user would —
// describe an experiment as JSON (including a DAX workflow on disk), run
// the sweep in paranoid mode, and write every report format.
package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dax"
	"repro/internal/expconf"
	"repro/internal/report"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func TestEndToEndConfiguredSweep(t *testing.T) {
	dir := t.TempDir()

	// A workflow on disk, exported as DAX by our own tooling.
	daxPath := filepath.Join(dir, "custom.dax")
	f, err := os.Create(daxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dax.Encode(f, workflows.CyberShake(6)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The experiment description.
	confPath := filepath.Join(dir, "exp.json")
	conf := `{
	  "seed": 9,
	  "region": "eu-dublin",
	  "paranoid": true,
	  "scenarios": ["Pareto", "Best case"],
	  "workflows": [
	    {"name": "Montage"},
	    {"name": "shakes", "file": "custom.dax"},
	    {"name": "wide-mr", "builder": "mapreduce", "m": 12, "r": 3}
	  ]
	}`
	if err := os.WriteFile(confPath, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg, err := expconf.LoadFile(confPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3*2*19 {
		t.Fatalf("cells = %d, want %d", s.Len(), 3*2*19)
	}

	// Every analysis and report surface works on the configured sweep.
	if rows := s.Table3(); len(rows) != 6 {
		t.Errorf("Table3 rows = %d", len(rows))
	}
	if rows := s.Table4(); len(rows) != 3 {
		t.Errorf("Table4 rows = %d", len(rows))
	}
	if _, err := s.Table5(); err != nil {
		t.Errorf("Table5: %v", err)
	}
	for _, wf := range s.Workflows() {
		if front := s.ParetoFront(wf, workload.Pareto); len(front) == 0 {
			t.Errorf("%s: empty Pareto front", wf)
		}
	}

	var csvBuf, mdBuf, htmlBuf, gnuBuf bytes.Buffer
	if err := report.WriteSweepCSV(&csvBuf, s); err != nil {
		t.Errorf("csv: %v", err)
	}
	if err := report.WriteMarkdown(&mdBuf, s); err != nil {
		t.Errorf("markdown: %v", err)
	}
	if err := report.WriteGnuplotData(&gnuBuf, s); err != nil {
		t.Errorf("gnuplot: %v", err)
	}
	if err := report.WriteHTML(&htmlBuf, s, "shakes", []string{"AllParExceed-m"}); err != nil {
		t.Errorf("html: %v", err)
	}
	for name, out := range map[string]string{
		"csv":     csvBuf.String(),
		"md":      mdBuf.String(),
		"gnuplot": gnuBuf.String(),
		"html":    htmlBuf.String(),
	} {
		if !strings.Contains(out, "shakes") {
			t.Errorf("%s output missing the DAX-sourced workflow", name)
		}
	}
}

func TestEndToEndExtendedParanoidSweep(t *testing.T) {
	// The widest single invocation: seven workflows, three scenarios,
	// nineteen strategies, every schedule validated and re-simulated.
	s, err := core.Run(core.Config{
		Seed:          1,
		Paranoid:      true,
		Workflows:     workflows.Extended(),
		WorkflowOrder: workflows.ExtendedNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 7*3*19 {
		t.Fatalf("cells = %d, want %d", s.Len(), 7*3*19)
	}
	// The instance-speed-up gain law holds on the new corpus too.
	for _, wf := range []string{"Epigenomics", "Inspiral", "CyberShake"} {
		r := s.MustGet(wf, workload.BestCase, "AllParExceed-m")
		if r.Point.GainPct < 35 || r.Point.GainPct > 40 {
			t.Errorf("%s: AllParExceed-m best-case gain %v, want ~37.5", wf, r.Point.GainPct)
		}
	}
}
