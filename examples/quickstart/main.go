// Quickstart: build a workflow, schedule it with two strategies, and
// compare makespan, cost and idle time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func main() {
	// 1. Take the paper's 24-task Montage workflow and weight it with the
	//    Pareto execution-time model (mean ~1000s per task).
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 42)
	fmt.Printf("workflow: %s — %d tasks in %d levels, max parallelism %d\n\n",
		wf.Name, wf.Len(), wf.Depth(), wf.MaxParallelism())

	// 2. Schedule it with the baseline (HEFT + one fresh small VM per
	//    task) and with the level-based AllParExceed policy on medium VMs.
	opts := sched.Options{Platform: cloud.NewPlatform(), Region: cloud.USEastVirginia}
	base, err := sched.Baseline().Schedule(wf, opts)
	if err != nil {
		log.Fatal(err)
	}
	allPar, err := sched.ByName("AllParExceed-m")
	if err != nil {
		log.Fatal(err)
	}
	s, err := allPar.Schedule(wf, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare: the point below is one marker of the paper's Fig. 4.
	point := metrics.Compare(allPar.Name(), s, base)
	fmt.Printf("baseline  %-20s makespan %7.0fs  cost $%6.3f  idle %7.0fs\n",
		sched.Baseline().Name(), base.Makespan(), base.TotalCost(), base.IdleTime())
	fmt.Printf("strategy  %-20s makespan %7.0fs  cost $%6.3f  idle %7.0fs\n\n",
		allPar.Name(), s.Makespan(), s.TotalCost(), s.IdleTime())
	fmt.Printf("gain %.1f%%, savings %.1f%% -> %v\n\n",
		point.GainPct, point.SavingsPct(), metrics.Classify(point))

	// 4. Every planned schedule replays exactly in the discrete-event
	//    simulator — run it and show the Gantt chart.
	if err := sim.Verify(s); err != nil {
		log.Fatalf("simulator disagrees: %v", err)
	}
	fmt.Println(trace.Gantt(s, 96))
}
