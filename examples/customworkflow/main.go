// Custom workflows: build a DAG through the public API, serialize it to
// JSON (the wfsim input format), read it back, and race all 19 catalog
// strategies on it — the workflow-specific counterpart of the paper's
// Fig. 4 panes, and the direction its future work announces (custom
// workflows with various properties).
//
// Run with:
//
//	go run ./examples/customworkflow
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"repro/internal/dag"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/wfio"
)

func main() {
	// A video-processing pipeline: ingest fans out into per-segment
	// transcode tasks of wildly different lengths, a thumbnail branch runs
	// on the side, and everything joins into packaging and publish steps.
	wf := dag.New("video-pipeline")
	ingest := wf.AddTask("ingest", 300)
	var transcodes []dag.TaskID
	for i, secs := range []float64{5200, 2600, 1400, 900, 700, 450} {
		t := wf.AddTask(fmt.Sprintf("transcode-%d", i), secs)
		wf.AddEdge(ingest, t, 512<<20)
		transcodes = append(transcodes, t)
	}
	thumbs := wf.AddTask("thumbnails", 240)
	wf.AddEdge(ingest, thumbs, 64<<20)
	pack := wf.AddTask("package", 600)
	for _, t := range transcodes {
		wf.AddEdge(t, pack, 256<<20)
	}
	wf.AddEdge(thumbs, pack, 16<<20)
	publish := wf.AddTask("publish", 120)
	wf.AddEdge(pack, publish, 1<<30)
	if err := wf.Freeze(); err != nil {
		log.Fatal(err)
	}

	// Round-trip through the JSON format used by cmd/wfsim.
	var buf bytes.Buffer
	if err := wfio.Encode(&buf, wf); err != nil {
		log.Fatal(err)
	}
	loaded, err := wfio.Decode(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s: %d tasks, %d edges, %.0fs of total work\n\n",
		loaded.Name, loaded.Len(), len(loaded.Edges()), loaded.TotalWork())

	// Race the full catalog on it.
	opts := sched.DefaultOptions()
	base, err := sched.Baseline().Schedule(loaded, opts)
	if err != nil {
		log.Fatal(err)
	}
	var points []metrics.Point
	for _, alg := range sched.Catalog() {
		s, err := alg.Schedule(loaded, opts)
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, metrics.Compare(alg.Name(), s, base))
	}

	// Print the strategies that land in the target square (both gain and
	// savings), best balance first.
	sort.SliceStable(points, func(i, j int) bool {
		bi := min(points[i].GainPct, points[i].SavingsPct())
		bj := min(points[j].GainPct, points[j].SavingsPct())
		return bi > bj
	})
	fmt.Println("strategies with both gain and savings on this workflow:")
	for _, p := range points {
		if !p.InTargetSquare() {
			continue
		}
		fmt.Printf("  %-22s gain %6.1f%%  savings %6.1f%%  ($%.3f, %d VMs)\n",
			p.Strategy, p.GainPct, p.SavingsPct(), p.Cost, p.VMCount)
	}
	fmt.Println("\nand the cost of pure speed:")
	for _, p := range points {
		if p.GainPct > 30 && !p.InTargetSquare() {
			fmt.Printf("  %-22s gain %6.1f%%  but loss %6.1f%%\n", p.Strategy, p.GainPct, p.LossPct)
		}
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
