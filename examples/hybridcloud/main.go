// Hybrid cloud: the HCOC setting from the paper's related work. The user
// owns a small private pool (already paid for); a deadline decides how
// much public-cloud capacity must be rented on top. The example traces the
// deadline→cost curve: each tightening of the deadline offloads more path
// clusters to rented VMs.
//
// Run with:
//
//	go run ./examples/hybridcloud
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/sched"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func main() {
	wf := workload.Pareto.Apply(workflows.PaperMontage(), 42)
	opts := sched.DefaultOptions()
	const privateVMs = 2

	// The free operating point: everything on the private pool.
	allPrivate, err := sched.NewHCOC(privateVMs, 1e12, cloud.Large).Schedule(wf, opts)
	if err != nil {
		log.Fatal(err)
	}
	base := allPrivate.Makespan()
	fmt.Printf("Montage on a %d-VM private pool: makespan %.0fs at $0.00\n\n", privateVMs, base)

	fmt.Println("tightening the deadline (public rentals: large instances):")
	fmt.Printf("  %-14s %12s %10s %12s\n", "deadline", "makespan", "cost", "public VMs")
	for _, frac := range []float64{1.0, 0.85, 0.7, 0.55, 0.4, 0.25} {
		deadline := base * frac
		s, err := sched.NewHCOC(privateVMs, deadline, cloud.Large).Schedule(wf, opts)
		missed := ""
		if errors.Is(err, sched.ErrDeadlineUnreachable) {
			missed = "  (unreachable — fastest found)"
		} else if err != nil {
			log.Fatal(err)
		}
		public := 0
		for _, vm := range s.VMs {
			if len(vm.Slots) > 0 && !vm.Prepaid {
				public++
			}
		}
		fmt.Printf("  %5.0f%% (%6.0fs) %11.0fs %10.2f %12d%s\n",
			100*frac, deadline, s.Makespan(), s.TotalCost(), public, missed)
	}

	fmt.Println("\neach tightening offloads more PCH path clusters to rented VMs —")
	fmt.Println("the deadline buys speed with money, never the other way around.")
}
