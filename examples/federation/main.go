// Federation: schedule a data-heavy workflow across EC2 regions and see
// the effect the paper's Table II transfer prices have. The paper notes
// that "strategies that tend to allocate more VMs are better suited for
// tasks with large data dependencies where the VM should be as close as
// possible to the data" — this example makes the trade-off concrete by
// comparing a data-local plan against one that ships intermediate data
// between continents.
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/sim"
)

func main() {
	// A two-site analytics pipeline: raw data lives in Dublin, the report
	// consumers in Virginia. Extract/clean produce 20 GB intermediates;
	// the summarize step reduces them to 100 MB.
	wf := dag.New("two-site-pipeline")
	extract := wf.AddTask("extract", 1800)
	clean := wf.AddTask("clean", 2400)
	summarize := wf.AddTask("summarize", 1200)
	report := wf.AddTask("report", 600)
	wf.AddEdge(extract, clean, 20<<30)
	wf.AddEdge(clean, summarize, 20<<30)
	wf.AddEdge(summarize, report, 100<<20)
	if err := wf.Freeze(); err != nil {
		log.Fatal(err)
	}
	p := cloud.NewPlatform()

	// Plan A — data locality: keep the heavy stages in Dublin on one VM,
	// ship only the 100 MB summary to Virginia.
	local := func() *plan.Schedule {
		b := plan.NewBuilder(wf, p, cloud.EUDublin)
		eu := b.NewVM(cloud.Large)
		us := b.NewVMIn(cloud.Small, cloud.USEastVirginia)
		b.PlaceOn(extract, eu)
		b.PlaceOn(clean, eu)
		b.PlaceOn(summarize, eu)
		b.PlaceOn(report, us)
		return b.Done()
	}()

	// Plan B — naive split: alternate stages between the regions, moving
	// every 20 GB intermediate across the Atlantic.
	naive := func() *plan.Schedule {
		b := plan.NewBuilder(wf, p, cloud.EUDublin)
		eu1 := b.NewVM(cloud.Large)
		us1 := b.NewVMIn(cloud.Large, cloud.USEastVirginia)
		eu2 := b.NewVMIn(cloud.Large, cloud.EUDublin)
		us2 := b.NewVMIn(cloud.Small, cloud.USEastVirginia)
		b.PlaceOn(extract, eu1)
		b.PlaceOn(clean, us1)
		b.PlaceOn(summarize, eu2)
		b.PlaceOn(report, us2)
		return b.Done()
	}()

	for _, c := range []struct {
		name string
		s    *plan.Schedule
	}{{"data-local", local}, {"naive split", naive}} {
		if err := sim.Verify(c.s); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-12s makespan %7.0fs  rent $%6.3f  transfer $%6.3f  total $%6.3f\n",
			c.name, c.s.Makespan(), c.s.RentalCost(), c.s.TransferCost(), c.s.TotalCost())
	}
	fmt.Println()
	fmt.Printf("shipping the intermediates costs $%.2f extra and %.0f s of extra makespan —\n",
		naive.TotalCost()-local.TotalCost(), naive.Makespan()-local.Makespan())
	fmt.Println("the locality argument the paper makes for data-intensive workflows.")
}
