// Service stream: the instance-intensive setting of the paper's related
// work. A stream of non-deterministic workflow instances (XOR quality
// split + refinement loop, so every instance realizes a different DAG)
// arrives at an elastic VM pool with BTU-boundary auto-scaling. The
// example shows (1) the makespan/cost distribution a static strategy
// induces across realized instances, and (2) how arrival rate and pool
// caps move the cost/response-time trade-off under load.
//
// Run with:
//
//	go run ./examples/servicestream
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/ndwf"
	"repro/internal/online"
	"repro/internal/sched"
	"repro/internal/stats"
)

// orderTemplate models an order-processing workflow: validation, parallel
// inventory+payment, an exceptional manual-review branch, and a retry loop
// around the shipping booking.
func orderTemplate() ndwf.Template {
	return ndwf.Template{
		Name: "order",
		Root: ndwf.Seq{
			ndwf.Task{Name: "validate", Work: 120},
			ndwf.Par{
				ndwf.Task{Name: "inventory", Work: 300},
				ndwf.Task{Name: "payment", Work: 240},
			},
			ndwf.Xor{
				Branches: []ndwf.Block{
					ndwf.Task{Name: "auto-approve", Work: 60},
					ndwf.Seq{
						ndwf.Task{Name: "manual-review", Work: 1800},
						ndwf.Task{Name: "re-check", Work: 300},
					},
				},
				Probs: []float64{0.9, 0.1},
			},
			ndwf.Loop{Body: ndwf.Task{Name: "book-shipping", Work: 200}, Repeat: 0.25, Max: 3},
			ndwf.Task{Name: "confirm", Work: 90},
		},
	}
}

func main() {
	tpl := orderTemplate()

	// Part 1 — static scheduling across realized instances: the makespan
	// and cost distribution each strategy induces on the non-deterministic
	// application.
	fmt.Println("per-instance outcome distribution over 200 realized DAGs:")
	for _, alg := range []sched.Algorithm{
		sched.Baseline(),
		sched.NewAllPar1LnS(),
		sched.NewAllPar1LnSDyn(),
	} {
		out, err := ndwf.Distribution(tpl, alg, sched.DefaultOptions(), 200, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s makespan p50 %6.0fs p99 %6.0fs   cost mean $%.3f   tasks %2.0f..%2.0f\n",
			alg.Name(), out.Makespan.Median, out.Makespan.P99, out.Cost.Mean,
			out.Tasks.Min, out.Tasks.Max)
	}

	// Part 2 — the same instances as an arriving stream against an
	// auto-scaled pool.
	fmt.Println("\nonline stream (400 orders, exponential arrivals):")
	build := func(i int, r *stats.RNG) *dag.Workflow {
		wf, err := tpl.Sample(r.Uint64())
		if err != nil {
			log.Fatal(err)
		}
		return wf
	}
	for _, cse := range []struct {
		label            string
		meanInterarrival float64
		maxVMs           int
	}{
		{"light load, uncapped", 600, 64},
		{"heavy load, uncapped", 60, 64},
		{"heavy load, 4-VM cap", 60, 4},
	} {
		res, err := online.Run(online.Config{
			MeanInterarrival: cse.meanInterarrival,
			Instances:        400,
			Instance:         build,
			Type:             cloud.Small,
			Region:           cloud.USEastVirginia,
			MaxVMs:           cse.maxVMs,
			Seed:             5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s response p50 %7.0fs p99 %8.0fs   cost $%7.2f   peak %2d VMs   util %3.0f%%\n",
			cse.label, res.ResponseTimes.Median, res.ResponseTimes.P99,
			res.TotalCost, res.PeakVMs, 100*res.Utilization())
	}
	fmt.Println("\nthe BTU-boundary scale-down keeps utilization high while bursts rent extra VMs;")
	fmt.Println("capping the pool trades response time for rent, the paper's trade-off under load.")
}
