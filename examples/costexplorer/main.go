// Cost explorer: watch the two budget-constrained upgrade algorithms
// (CPA-Eager with a 2x budget, Gain with 4x) trade money for speed on the
// same workflow, then sweep the boot-time knob the paper deliberately
// zeroes out — quantifying what its pre-booting assumption is worth.
//
// Run with:
//
//	go run ./examples/costexplorer
package main

import (
	"fmt"
	"log"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workflows"
	"repro/internal/workload"
)

func main() {
	wf := workload.Pareto.Apply(workflows.CSTEM(), 7)
	opts := sched.DefaultOptions()

	base, err := sched.Baseline().Schedule(wf, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSTEM, Pareto execution times — baseline %s:\n", sched.Baseline().Name())
	fmt.Printf("  makespan %7.0fs, cost $%.3f\n\n", base.Makespan(), base.TotalCost())

	fmt.Println("budget-constrained escalation:")
	for _, alg := range []sched.Algorithm{sched.NewCPAEager(), sched.NewGain()} {
		s, err := alg.Schedule(wf, opts)
		if err != nil {
			log.Fatal(err)
		}
		types := map[string]int{}
		for _, vm := range s.VMs {
			if len(vm.Slots) > 0 {
				types[vm.Type.String()]++
			}
		}
		fmt.Printf("  %-10s makespan %7.0fs (%.1fx faster), cost $%.3f (%.1fx), VM mix %v\n",
			alg.Name(), s.Makespan(), base.Makespan()/s.Makespan(),
			s.TotalCost(), s.TotalCost()/base.TotalCost(), types)
	}

	// Boot-time ablation: the paper ignores boot because static schedules
	// can pre-boot. How much would ignoring that cost a non-pre-booting
	// deployment? Amazon-measured boots are "usually less than two
	// minutes" (the paper cites Mao & Humphrey).
	fmt.Println("\nboot-time ablation (AllParExceed-s):")
	alg, err := sched.ByName("AllParExceed-s")
	if err != nil {
		log.Fatal(err)
	}
	s, err := alg.Schedule(wf, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, boot := range []float64{0, 30, 60, 120, 300} {
		res, err := sim.Run(s, sim.Config{BootTime: boot})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  boot %4.0fs -> makespan %7.0fs (+%5.1f%%), cost $%.3f\n",
			boot, res.Makespan, 100*(res.Makespan-s.Makespan())/s.Makespan(), res.RentalCost)
	}
}
