// Adaptive strategy selection — the paper's concluding proposal turned
// into code: run the sweep once, then, for each workflow class and user
// goal (savings / gain / balance), pick the provisioning + scheduling
// combination the evidence recommends, as in Table V.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	// Build the evidence base: the full workflow x scenario x strategy
	// grid. Paranoid mode cross-checks every schedule in the simulator.
	sweep, err := core.Run(core.Config{Seed: 42, Paranoid: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d (workflow, scenario, strategy) cells\n\n", sweep.Len())

	// An incoming job: "a MapReduce-like workflow; I care about cost".
	rec, err := sweep.Recommend("MapReduce", core.Savings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-sensitive MapReduce user -> use %s (saves %.0f%% in the Pareto case)\n",
		rec.Strategy, rec.Point.SavingsPct())

	// The same workflow for a deadline-driven user.
	rec, err = sweep.Recommend("MapReduce", core.GainGoal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadline-driven MapReduce user -> use %s (gains %.0f%%)\n\n",
		rec.Strategy, rec.Point.GainPct)

	// The full Table V: every workflow class crossed with every goal.
	fmt.Println("full recommendation matrix (Table V):")
	recs, err := sweep.Table5()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("  %-11s %-8s -> %-22s (gain %5.1f%%, savings %5.1f%%)\n",
			r.Workflow, r.Goal, r.Strategy, r.Point.GainPct, r.Point.SavingsPct())
	}

	// Adaptive dispatch: schedule the actual workflow with the strategy
	// the recommender picked for the balance goal.
	rec, err = sweep.Recommend("Montage", core.Balance)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := sched.ByName(rec.Strategy)
	if err != nil {
		log.Fatal(err)
	}
	wf := workload.Pareto.Apply(sweep.Config.Workflows["Montage"], 42)
	s, err := alg.Schedule(wf, sched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptively dispatched Montage via %s: makespan %.0fs, cost $%.3f on %d VMs\n",
		rec.Strategy, s.Makespan(), s.TotalCost(), s.VMCount())
}
