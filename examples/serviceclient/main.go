// Service client: drive the scheduling-as-a-service API end to end. The
// example embeds a service instance on an ephemeral port (so it is
// self-contained — against a real deployment, point base at your wfservd
// address), then walks the API:
//
//  1. GET  /v1/catalog   — discover valid names;
//  2. POST /v1/schedule  — plan Montage-24 with AllParExceed-m, twice,
//     showing the second answer arrives from the result cache;
//  3. POST /v1/schedule  — a custom inline workflow, keeping its own
//     weights and replaying the plan through the simulator;
//  4. POST /v1/compare   — all 19 strategies on one workflow;
//  5. GET  /metrics      — the counters the load balancer watches.
//
// Run with:
//
//	go run ./examples/serviceclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	base := ts.URL

	// 1. What does this service speak?
	var catalog service.CatalogResponse
	getJSON(base+"/v1/catalog", &catalog)
	fmt.Printf("catalog: %d strategies, %d built-in workflows, scenarios %v\n",
		len(catalog.Strategies), len(catalog.Workflows), catalog.Scenarios)

	// 2. Plan the paper's Montage twice: cold, then cached.
	req := `{"workflow_name":"montage24","strategy":"AllParExceed-m","scenario":"Pareto","seed":42}`
	var plan service.ScheduleResponse
	hdr := postJSON(base+"/v1/schedule", req, &plan)
	fmt.Printf("\nschedule %s / %s  (X-Cache: %s)\n", plan.Workflow, plan.Strategy, hdr.Get("X-Cache"))
	fmt.Printf("  makespan %7.0fs   gain %5.1f%%  vs baseline %7.0fs\n",
		plan.Makespan, plan.GainPct, plan.BaselineMakespan)
	fmt.Printf("  cost     $%7.3f  loss %5.1f%%  on %d VMs, %s\n",
		plan.Cost, plan.LossPct, plan.VMCount, plan.Category)
	hdr = postJSON(base+"/v1/schedule", req, &plan)
	fmt.Printf("  resubmitted: X-Cache: %s (no re-planning)\n", hdr.Get("X-Cache"))

	// 3. A custom inline workflow, pre-weighted ("As is"), simulated with
	// a 60 s VM boot the planner ignores.
	inline := `{
	  "workflow": {
	    "name": "etl",
	    "tasks": [{"name":"extract","work":900},{"name":"clean","work":2400},
	              {"name":"train","work":7200},{"name":"report","work":600}],
	    "edges": [{"from":0,"to":1,"data":2147483648},{"from":1,"to":2,"data":1073741824},{"from":2,"to":3}]
	  },
	  "scenario": "As is", "strategy": "CPA-Eager", "simulate": true, "boot_s": 60
	}`
	postJSON(base+"/v1/schedule", inline, &plan)
	fmt.Printf("\ninline %s / %s: planned %0.fs, simulated with boot %.0fs -> %.0fs (%d events)\n",
		plan.Workflow, plan.Strategy, plan.Makespan,
		plan.Simulation.BootS, plan.Simulation.Makespan, plan.Simulation.Events)

	// 4. Race the whole catalog on CSTEM.
	var cmp service.CompareResponse
	postJSON(base+"/v1/compare", `{"workflow_name":"CSTEM","scenario":"Pareto","seed":42}`, &cmp)
	sort.SliceStable(cmp.Results, func(i, j int) bool { return cmp.Results[i].GainPct > cmp.Results[j].GainPct })
	fmt.Printf("\ncompare %s: %d strategies, top 5 by gain:\n", cmp.Workflow, len(cmp.Results))
	for _, row := range cmp.Results[:5] {
		fmt.Printf("  %-22s gain %5.1f%%  loss %7.1f%%  %s\n",
			row.Strategy, row.GainPct, row.LossPct, row.Category)
	}

	// 5. Operational counters. The bare endpoint serves Prometheus text;
	// the JSON summary is behind ?format=json.
	var m service.MetricsSnapshot
	getJSON(base+"/metrics?format=json", &m)
	fmt.Printf("\nmetrics: %d requests, cache hit ratio %.2f, p95 plan latency %.3fs\n",
		m.RequestsTotal, m.CacheHitRatio, m.LatencyP95S)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url, body string, v any) http.Header {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, eb.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
	return resp.Header
}
